package camelot

import (
	"sync/atomic"
	"time"

	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/rpc"
)

// rpcTimeout bounds client waits on the disk manager.
const rpcTimeout = 10 * time.Second

var txIDs atomic.Uint64

// Client is an application task's connection to the Camelot disk manager.
type Client struct {
	task *kern.Task
	c    CamelotClient
}

// Segment is a recoverable segment mapped into the client's address
// space: the client reads and writes it as ordinary memory (the paper's
// "Camelot clients can access data easily and quickly by mapping memory
// objects into their virtual address spaces").
type Segment struct {
	// Addr is where the segment is mapped in the client task.
	Addr uint64
	// Size is the segment length.
	Size uint64
	// ID is the manager's segment identifier.
	ID uint32

	client *Client
}

// Open connects a task to a disk manager's service port (obtained via
// Publish).
func Open(task *kern.Task, svc ipc.Name) *Client {
	return &Client{task: task, c: NewCamelotClient(task.Space, svc, rpcTimeout)}
}

// CreateSegment creates a recoverable segment of the given size.
func (c *Client) CreateSegment(name string, size uint64) error {
	st, err := c.c.CreateSegment(&CreateSegmentRequest{Size: size, Name: name})
	if err != nil {
		return err
	}
	if st != rpc.StatusOK {
		return ErrServer
	}
	return nil
}

// Attach maps the named segment into the client's address space.
func (c *Client) Attach(name string) (*Segment, error) {
	out, st, err := c.c.AttachSegment(&AttachSegmentRequest{Name: name})
	if err != nil {
		return nil, err
	}
	switch st {
	case rpc.StatusOK:
	case rpc.StatusNotFound:
		return nil, ErrNoSegment
	default:
		return nil, ErrServer
	}
	if out.Object == 0 {
		return nil, ErrServer
	}
	addr, err := c.task.VMAllocateWithPager(out.Object, 0, 0, out.Size, true)
	if err != nil {
		return nil, err
	}
	return &Segment{Addr: addr, Size: out.Size, ID: out.ID, client: c}, nil
}

// Read reads directly from the mapped segment (no transaction needed;
// the kernel's page cache serves repeated reads with no message traffic).
func (s *Segment) Read(offset uint64, n int) ([]byte, error) {
	return s.client.task.VMRead(s.Addr+offset, uint64(n))
}

// undoRec is a client-local undo entry for abort.
type undoRec struct {
	seg    *Segment
	offset uint64
	old    []byte
}

// Tx is a failure-atomic transaction over recoverable segments.
type Tx struct {
	// ID is the transaction identifier.
	ID uint64

	client *Client
	undo   []undoRec
	done   bool
}

// Begin starts a transaction.
func (c *Client) Begin() *Tx {
	return &Tx{ID: txIDs.Add(1), client: c}
}

// Write transactionally updates the segment: the old and new values are
// logged at the disk manager FIRST (write-ahead), then the mapped memory
// is updated. The data is limited to MaxUpdate of the manager's log block
// size.
func (tx *Tx) Write(s *Segment, offset uint64, data []byte) error {
	old, err := s.client.task.VMRead(s.Addr+offset, uint64(len(data)))
	if err != nil {
		return err
	}
	// Log before update: the reply means the record is in the
	// manager's buffer, ordered before any future page write-back.
	st, err := tx.client.c.LogAppend(&LogAppendRequest{
		Tx: tx.ID, Seg: s.ID, Offset: offset, Old: old, New: data,
	})
	if err != nil {
		return err
	}
	switch st {
	case rpc.StatusOK:
	case rpc.StatusTooLarge:
		return ErrUpdateTooLarge
	default:
		return ErrServer
	}
	if err := s.client.task.VMWrite(s.Addr+offset, data); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{seg: s, offset: offset, old: old})
	return nil
}

// Commit makes the transaction's updates permanent: the disk manager
// forces the log through the commit record before replying.
func (tx *Tx) Commit() error {
	if tx.done {
		return nil
	}
	tx.done = true
	st, err := tx.client.c.TxCommit(&TxCommitRequest{Tx: tx.ID})
	return tx.outcomeErr(st, err)
}

// Abort rolls the transaction back: mapped memory is restored from the
// client's undo set and an abort record is logged.
func (tx *Tx) Abort() error {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		if err := u.seg.client.task.VMWrite(u.seg.Addr+u.offset, u.old); err != nil {
			return err
		}
	}
	if tx.done {
		return nil
	}
	tx.done = true
	st, err := tx.client.c.TxAbort(&TxAbortRequest{Tx: tx.ID})
	return tx.outcomeErr(st, err)
}

func (tx *Tx) outcomeErr(st rpc.Status, err error) error {
	if err != nil {
		return err
	}
	if st != rpc.StatusOK {
		return ErrServer
	}
	return nil
}
