package camelot

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/iomgr"
	"repro/internal/kern"
	"repro/internal/pager"
)

// newDurable boots a kernel plus a durable disk manager over dir.
func newDurable(t testing.TB, dir string, o DurableOptions) (*kern.Kernel, *DiskManager, *Client) {
	t.Helper()
	k := kern.NewKernel(kern.Config{Frames: 256, PageSize: pgsz})
	dm, err := NewDurableDiskManager(k, dir, o)
	if err != nil {
		t.Fatal(err)
	}
	go dm.Run()
	app := k.NewTask()
	svc, err := dm.Publish(app)
	if err != nil {
		t.Fatal(err)
	}
	return k, dm, Open(app, svc)
}

// TestDurableReopenAfterCrash is the acceptance scenario: transactions
// against a real-file volume, a crash that loses every cached page and
// all volatile manager state (the process's view dies with dm.Close),
// then a REOPEN from the directory by a brand-new kernel and manager.
// Committed transactions are exactly recovered; an uncommitted
// transaction whose dirty page had already reached the data file is
// rolled back.
func TestDurableReopenAfterCrash(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{DataBlocks: 64, LogBlocks: 256, LogBlockSize: pgsz}
	_, dm1, c1 := newDurable(t, dir, opts)

	if err := c1.CreateSegment("acct", 4*pgsz); err != nil {
		t.Fatal(err)
	}
	seg, err := c1.Attach("acct")
	if err != nil {
		t.Fatal(err)
	}
	// Committed state: must survive the crash.
	tx1 := c1.Begin()
	if err := tx1.Write(seg, 0, []byte("GOOD")); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Write(seg, pgsz+8, []byte("KEEP")); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	st := dm1.wal.Stats()
	if st.Fsyncs == 0 || st.Durable == 0 {
		t.Fatalf("commit did not fsync the log: %+v", st)
	}
	// Uncommitted overwrite of the committed bytes, flushed to the data
	// FILE mid-transaction (the WAL force makes its undo durable) —
	// recovery must roll it back on the real disk image.
	tx2 := c1.Begin()
	if err := tx2.Write(seg, 0, []byte("EVIL")); err != nil {
		t.Fatal(err)
	}
	dm1.mu.Lock()
	mo := dm1.segments["acct"].mo
	dm1.mu.Unlock()
	if err := mo.FlushRequest(0, pgsz); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for dm1.Stats().PageWrites == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if dm1.Stats().PageWrites == 0 {
		t.Fatal("flush write never reached the data file")
	}

	// Crash: close the files without any flush or checkpoint. The
	// kernel's cached pages and the manager's volatile state are gone.
	if err := dm1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from the directory with a fresh kernel: catalog rebuilds
	// the segment table, the log scan finds the durable tail, replay
	// repeats history and rolls the loser back.
	k2, dm2, c2 := newDurable(t, dir, opts)
	defer dm2.Close()
	defer k2.Shutdown()
	data, err := dm2.SegmentBytes("acct")
	if err != nil {
		t.Fatal(err)
	}
	if string(data[0:4]) != "GOOD" {
		t.Fatalf("recovered %q, want GOOD (tx2 rolled back, tx1 kept)", data[0:4])
	}
	if string(data[pgsz+8:pgsz+12]) != "KEEP" {
		t.Fatalf("second committed page lost: %q", data[pgsz+8:pgsz+12])
	}
	// The recovered segment is live: attach and read through the pager,
	// then run a fresh transaction against it.
	seg2, err := c2.Attach("acct")
	if err != nil {
		t.Fatal(err)
	}
	got, err := seg2.Read(0, 4)
	if err != nil || string(got) != "GOOD" {
		t.Fatalf("mapped read after recovery: %q %v", got, err)
	}
	tx := c2.Begin()
	if err := tx.Write(seg2, 2*pgsz, []byte("MORE")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCommitFailsWhenLogDies: a log-device write failure at
// commit time surfaces to the client as a failed commit, and after
// reopening the volume the transaction is NOT recovered — the reply
// and the disk agree.
func TestDurableCommitFailsWhenLogDies(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{DataBlocks: 64, LogBlocks: 256, LogBlockSize: pgsz}
	_, dm1, c1 := newDurable(t, dir, opts)

	if err := c1.CreateSegment("s", 2*pgsz); err != nil {
		t.Fatal(err)
	}
	seg, err := c1.Attach("s")
	if err != nil {
		t.Fatal(err)
	}
	tx1 := c1.Begin()
	tx1.Write(seg, 0, []byte("SAFE"))
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Kill the next log write: tx2's update record never reaches the
	// file, so its commit cannot be made durable.
	dm1.wal.File().InjectFault(iomgr.OpWrite, 1, errors.New("injected: log device died"))
	tx2 := c1.Begin()
	if err := tx2.Write(seg, 8, []byte("LOST")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err == nil {
		t.Fatal("commit succeeded although the log device failed")
	}
	if err := dm1.Close(); err != nil {
		t.Fatal(err)
	}

	k2, dm2, _ := newDurable(t, dir, opts)
	defer dm2.Close()
	defer k2.Shutdown()
	data, err := dm2.SegmentBytes("s")
	if err != nil {
		t.Fatal(err)
	}
	if string(data[0:4]) != "SAFE" {
		t.Fatalf("committed tx1 lost: %q", data[0:4])
	}
	for i := 8; i < 12; i++ {
		if data[i] != 0 {
			t.Fatalf("failed commit's data recovered anyway: %q", data[8:12])
		}
	}
}

// TestWALGroupCommitBatchesFsyncs: concurrent Force calls share fsyncs
// — one leader syncs for everybody, so Fsyncs ends strictly below
// Forces.
func TestWALGroupCommitBatchesFsyncs(t *testing.T) {
	w, err := OpenWAL(filepath.Join(t.TempDir(), "wal.log"), 256, 256, iomgr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const records = 96
	for lsn := uint64(1); lsn <= records; lsn++ {
		w.Append(lsn, encodeRecord(&record{lsn: lsn, tx: lsn, kind: recCommit}, 256))
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		lsn := uint64((i + 1) * (records / 8))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Force(lsn); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := w.Stats()
	if st.Durable < records {
		t.Fatalf("durable %d, want >= %d", st.Durable, records)
	}
	if st.Forces != 8 {
		t.Fatalf("forces %d, want 8", st.Forces)
	}
	if st.Fsyncs >= st.Forces {
		t.Fatalf("no group-commit batching: %d fsyncs for %d forces", st.Fsyncs, st.Forces)
	}
	// The scan sees every record (reopen path).
	if got := len(w.scan()); got != records {
		t.Fatalf("scan found %d records, want %d", got, records)
	}
}

// walGuard wraps the data store and asserts, on every page write, that
// the log is DURABLE (fsynced, not merely submitted) through the
// page's last LSN — the paper's pager_flush_request check, on the real
// fsync path.
type walGuard struct {
	pager.BlockStore
	t  *testing.T
	dm *DiskManager
}

func (g *walGuard) Write(block int, src []byte) {
	dm := g.dm
	if dm != nil {
		dm.mu.Lock()
		var lsn uint64
		for _, seg := range dm.bySegID {
			for pg, b := range seg.blocks {
				if b == block {
					if l := dm.pageLSN[pageKey(seg.id, uint64(pg))]; l > lsn {
						lsn = l
					}
				}
			}
		}
		dm.mu.Unlock()
		if d := dm.wal.Durable(); d < lsn {
			g.t.Errorf("block %d written with log durable only to %d, page LSN %d", block, d, lsn)
		}
	}
	g.BlockStore.Write(block, src)
}

// TestDurableWALPrecedesPageWrite evicts recoverable pages under
// memory pressure and checks the stable-storage ordering invariant for
// every single data-file write.
func TestDurableWALPrecedesPageWrite(t *testing.T) {
	dir := t.TempDir()
	k := kern.NewKernel(kern.Config{Frames: 16, PageSize: pgsz})
	defer k.Shutdown()
	vol, err := pager.OpenFileVolume(filepath.Join(dir, "data.vol"), 64, pgsz, iomgr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	guard := &walGuard{BlockStore: vol, t: t}
	wal, err := OpenWAL(filepath.Join(dir, "wal.log"), 1024, pgsz, iomgr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := newManager(k, guard, wal)
	if err != nil {
		t.Fatal(err)
	}
	guard.dm = dm
	go dm.Run()
	defer func() {
		dm.Stop()
		wal.Close()
		vol.Close()
	}()
	app := k.NewTask()
	svc, err := dm.Publish(app)
	if err != nil {
		t.Fatal(err)
	}
	c := Open(app, svc)
	if err := c.CreateSegment("big", 32*pgsz); err != nil {
		t.Fatal(err)
	}
	seg, err := c.Attach("big")
	if err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	for i := 0; i < 32; i++ {
		if err := tx.Write(seg, uint64(i)*pgsz, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st := dm.Stats()
	if st.PageWrites == 0 {
		t.Fatal("no page writes despite 2x memory pressure")
	}
	ws := wal.Stats()
	if ws.Fsyncs == 0 {
		t.Fatalf("page writes happened without a single fsync: %+v", ws)
	}
	t.Logf("pageWrites=%d walForces=%d wal=%+v", st.PageWrites, st.WALForces, ws)
}
