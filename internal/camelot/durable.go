package camelot

import (
	"errors"
	"os"
	"path/filepath"

	"repro/internal/iomgr"
	"repro/internal/kern"
	"repro/internal/pager"
	"repro/internal/rpc"
)

// DurableOptions sizes a real-file disk manager (NewDurableDiskManager).
type DurableOptions struct {
	// DataBlocks is the data volume capacity in pages (default 1024).
	DataBlocks int
	// LogBlocks is the log capacity in record slots (default 8192).
	LogBlocks int
	// LogBlockSize is the record slot size in bytes; MaxUpdate of it
	// bounds transactional writes (default 512).
	LogBlockSize int
	// Frames, when positive, interposes a frame-table buffer pool of
	// that many page frames between the manager and the data volume.
	Frames int
	// IO configures the I/O manager backend for all three files.
	IO iomgr.Options
}

// durableState carries the real-file resources of a durable manager.
type durableState struct {
	dataVol *pager.FileVolume
	pool    *pager.FramePool
	catalog *iomgr.File
}

// catalogMagic marks a valid catalog file.
const catalogMagic = 0xCA7A106D

// NewDurableDiskManager starts a disk manager whose permanent state —
// recoverable segment pages, the write-ahead log, and the segment
// catalog — lives in real files under dir (data.vol, wal.log,
// catalog.meta), all I/O through the I/O manager. Opening a directory
// that already holds a volume RECOVERS it: the catalog rebuilds the
// segment table, the log is scanned to its durable tail, and replay
// reconstructs exactly the committed state at the crash — uncommitted
// transactions roll back. Commits reply only after the commit record
// is fsynced (group-committed across concurrent committers), so what a
// client was told is permanent survives pulling the plug.
func NewDurableDiskManager(k *kern.Kernel, dir string, o DurableOptions) (*DiskManager, error) {
	if o.DataBlocks <= 0 {
		o.DataBlocks = 1024
	}
	if o.LogBlocks <= 0 {
		o.LogBlocks = 8192
	}
	if o.LogBlockSize <= 0 {
		o.LogBlockSize = 512
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	ps := int(k.VM.PageSize())
	dataVol, err := pager.OpenFileVolume(filepath.Join(dir, "data.vol"), o.DataBlocks, ps, o.IO)
	if err != nil {
		return nil, err
	}
	var store pager.BlockStore = dataVol
	var pool *pager.FramePool
	if o.Frames > 0 {
		pool = pager.NewFramePool(dataVol, o.Frames)
		store = pool
	}
	wal, err := OpenWAL(filepath.Join(dir, "wal.log"), o.LogBlocks, o.LogBlockSize, o.IO)
	if err != nil {
		dataVol.Close()
		return nil, err
	}
	catOpts := o.IO
	catOpts.Create = true
	catalog, err := iomgr.Open(filepath.Join(dir, "catalog.meta"), catOpts)
	if err != nil {
		wal.Close()
		dataVol.Close()
		return nil, err
	}
	dm, err := newManager(k, store, wal)
	if err != nil {
		catalog.Close()
		wal.Close()
		dataVol.Close()
		return nil, err
	}
	dm.durable = &durableState{dataVol: dataVol, pool: pool, catalog: catalog}
	if err := dm.loadCatalog(); err != nil {
		dm.Close()
		return nil, err
	}
	// Find the durable tail of the log and repeat history: after this,
	// the data store holds exactly the committed state at the crash.
	if recs := wal.scan(); len(recs) > 0 {
		last := recs[len(recs)-1].lsn
		dm.mu.Lock()
		dm.nextLSN, dm.forcedLSN = last, last
		dm.mu.Unlock()
		wal.reopen(last)
		dm.Recover()
	}
	return dm, nil
}

// reopen seeds the log cursors after a recovery scan found records
// through lsn on the device.
func (w *WAL) reopen(lsn uint64) {
	w.mu.Lock()
	if lsn > w.written {
		w.written = lsn
	}
	if lsn > w.durable {
		w.durable = lsn
	}
	w.mu.Unlock()
}

// Close releases a durable manager's files WITHOUT flushing cached
// pages — deliberately crash-consistent: recovery replays the log, so
// a clean shutdown needs no checkpoint. (For a simulated manager it
// just stops the service loop.)
func (dm *DiskManager) Close() error {
	dm.Stop()
	if dm.durable == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	keep(dm.wal.Close())
	keep(dm.durable.catalog.Close())
	keep(dm.durable.dataVol.Close())
	return first
}

// saveCatalog persists the segment table: magic, allocation cursors,
// then per segment id / size / first block / page count / name (a
// segment's blocks are always contiguous). Written synchronously and
// fsynced — a segment exists once its creator gets a reply.
func (dm *DiskManager) saveCatalog() error {
	dm.mu.Lock()
	e := rpc.NewEnc().U32(catalogMagic).U32(dm.nextSeg).U64(uint64(dm.nextBlk)).U32(uint32(len(dm.segments)))
	for _, seg := range dm.segments {
		start := uint64(0)
		if len(seg.blocks) > 0 {
			start = uint64(seg.blocks[0])
		}
		e.U32(seg.id).U64(seg.size).U64(start).U32(uint32(len(seg.blocks))).String(seg.name)
	}
	dm.mu.Unlock()
	cat := dm.durable.catalog
	if _, err := cat.SyncWriteAt(e.Payload(), 0); err != nil {
		return err
	}
	return cat.SyncFsync()
}

// loadCatalog rebuilds the segment table (and each segment's memory
// object) from a previously saved catalog; a fresh file is a no-op.
func (dm *DiskManager) loadCatalog() error {
	cat := dm.durable.catalog
	size, err := cat.Size()
	if err != nil {
		return err
	}
	if size == 0 {
		return nil
	}
	buf := make([]byte, size)
	if _, err := cat.SyncReadAt(buf, 0); err != nil {
		return err
	}
	d := rpc.NewDec(buf)
	if d.U32() != catalogMagic {
		return errors.New("camelot: corrupt catalog")
	}
	nextSeg := d.U32()
	nextBlk := d.U64()
	n := int(d.U32())
	for i := 0; i < n; i++ {
		id := d.U32()
		sz := d.U64()
		start := d.U64()
		npages := int(d.U32())
		name := d.String()
		if err := d.Err(); err != nil {
			return errors.New("camelot: corrupt catalog: " + err.Error())
		}
		seg := &segment{id: id, name: name, size: sz}
		for p := 0; p < npages; p++ {
			seg.blocks = append(seg.blocks, int(start)+p)
		}
		mo, err := dm.mgr.NewObject(seg)
		if err != nil {
			return err
		}
		seg.mo = mo
		dm.mu.Lock()
		dm.segments[name] = seg
		dm.bySegID[id] = seg
		dm.byObject[mo.Port] = seg
		dm.mu.Unlock()
	}
	if err := d.Err(); err != nil {
		return errors.New("camelot: corrupt catalog: " + err.Error())
	}
	dm.mu.Lock()
	dm.nextSeg = nextSeg
	dm.nextBlk = int(nextBlk)
	dm.mu.Unlock()
	return nil
}
