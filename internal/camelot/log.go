// Package camelot implements the transaction-system interaction of §8.3:
// a Camelot-style disk manager that keeps recoverable segments in virtual
// memory backed by the external pager interface, using write-ahead
// logging for permanent, failure-atomic transactions.
//
// The load-bearing behaviour from the paper: "When the disk manager
// receives a pager_flush_request from the kernel, it verifies that the
// proper log records have been written before writing the specified pages
// to disk." Here every pager_data_write (from eviction, flush or
// termination) is gated on forcing the log up to the page's LSN — the WAL
// invariant — and the package provides crash simulation plus redo/undo
// recovery to demonstrate failure atomicity.
package camelot

import (
	"encoding/binary"
	"errors"
)

// recordKind discriminates log records.
type recordKind uint8

const (
	recUpdate recordKind = iota + 1
	recCommit
	recAbort
)

// logMagic marks a valid log block on disk.
const logMagic = 0xC4

// record is one write-ahead log entry: physical old-value/new-value
// logging for an update, or a transaction outcome.
type record struct {
	lsn    uint64
	tx     uint64
	kind   recordKind
	seg    uint32
	offset uint64
	old    []byte
	new    []byte
}

// recHeaderLen is the on-disk record prefix:
// magic(1) kind(1) lsn(8) tx(8) seg(4) offset(8) oldLen(2) newLen(2).
const recHeaderLen = 34

// encodeRecord serializes a record into a log block of size blockSize.
// Records must fit one block (enforced by MaxUpdate).
func encodeRecord(r *record, blockSize int) []byte {
	b := make([]byte, blockSize)
	b[0] = logMagic
	b[1] = byte(r.kind)
	binary.LittleEndian.PutUint64(b[2:], r.lsn)
	binary.LittleEndian.PutUint64(b[10:], r.tx)
	binary.LittleEndian.PutUint32(b[18:], r.seg)
	binary.LittleEndian.PutUint64(b[22:], r.offset)
	binary.LittleEndian.PutUint16(b[30:], uint16(len(r.old)))
	binary.LittleEndian.PutUint16(b[32:], uint16(len(r.new)))
	copy(b[recHeaderLen:], r.old)
	copy(b[recHeaderLen+len(r.old):], r.new)
	return b
}

// decodeRecord parses a log block; ok is false for unwritten blocks.
func decodeRecord(b []byte) (record, bool) {
	if len(b) < recHeaderLen || b[0] != logMagic {
		return record{}, false
	}
	r := record{
		kind:   recordKind(b[1]),
		lsn:    binary.LittleEndian.Uint64(b[2:]),
		tx:     binary.LittleEndian.Uint64(b[10:]),
		seg:    binary.LittleEndian.Uint32(b[18:]),
		offset: binary.LittleEndian.Uint64(b[22:]),
	}
	oldLen := int(binary.LittleEndian.Uint16(b[30:]))
	newLen := int(binary.LittleEndian.Uint16(b[32:]))
	if recHeaderLen+oldLen+newLen > len(b) {
		return record{}, false
	}
	r.old = append([]byte(nil), b[recHeaderLen:recHeaderLen+oldLen]...)
	r.new = append([]byte(nil), b[recHeaderLen+oldLen:recHeaderLen+oldLen+newLen]...)
	return r, true
}

// MaxUpdate returns the largest update payload a single log record can
// carry for the given log block size.
func MaxUpdate(blockSize int) int { return (blockSize - recHeaderLen) / 2 }

// ErrUpdateTooLarge is returned when a transactional write exceeds
// MaxUpdate.
var ErrUpdateTooLarge = errors.New("camelot: update exceeds log record capacity")
