// Package camelot implements the transaction-system interaction of §8.3:
// a Camelot-style disk manager that keeps recoverable segments in virtual
// memory backed by the external pager interface, using write-ahead
// logging for permanent, failure-atomic transactions.
//
// The load-bearing behaviour from the paper: "When the disk manager
// receives a pager_flush_request from the kernel, it verifies that the
// proper log records have been written before writing the specified pages
// to disk." Here every pager_data_write (from eviction, flush or
// termination) is gated on forcing the log up to the page's LSN — the WAL
// invariant — and the package provides crash simulation plus redo/undo
// recovery to demonstrate failure atomicity.
package camelot

import (
	"errors"

	"repro/internal/rpc"
)

// recordKind discriminates log records.
type recordKind uint8

const (
	recUpdate recordKind = iota + 1
	recCommit
	recAbort
)

// logMagic marks a valid log block on disk.
const logMagic = 0xC4

// record is one write-ahead log entry: physical old-value/new-value
// logging for an update, or a transaction outcome.
type record struct {
	lsn    uint64
	tx     uint64
	kind   recordKind
	seg    uint32
	offset uint64
	old    []byte
	new    []byte
}

// recHeaderLen is the on-disk record prefix, encoded with the rpc codec:
// magic(1) kind(1) lsn(8) tx(8) seg(4) offset(8) plus the two u32 length
// prefixes of the old and new byte fields.
const recHeaderLen = 38

// encodeRecord serializes a record into a log block of size blockSize.
// Records must fit one block (enforced by MaxUpdate).
func encodeRecord(r *record, blockSize int) []byte {
	p := rpc.NewEnc().
		U8(logMagic).U8(byte(r.kind)).
		U64(r.lsn).U64(r.tx).U32(r.seg).U64(r.offset).
		Bytes(r.old).Bytes(r.new).
		Payload()
	b := make([]byte, blockSize)
	copy(b, p)
	return b
}

// decodeRecord parses a log block; ok is false for unwritten or
// corrupted blocks.
func decodeRecord(b []byte) (record, bool) {
	d := rpc.NewDec(b)
	if d.U8() != logMagic {
		return record{}, false
	}
	r := record{
		kind:   recordKind(d.U8()),
		lsn:    d.U64(),
		tx:     d.U64(),
		seg:    d.U32(),
		offset: d.U64(),
	}
	// The block buffer is reused by the recovery scan; copy the
	// payloads out.
	r.old = append([]byte(nil), d.Bytes()...)
	r.new = append([]byte(nil), d.Bytes()...)
	if d.Err() != nil {
		return record{}, false
	}
	return r, true
}

// MaxUpdate returns the largest update payload a single log record can
// carry for the given log block size.
func MaxUpdate(blockSize int) int { return (blockSize - recHeaderLen) / 2 }

// ErrUpdateTooLarge is returned when a transactional write exceeds
// MaxUpdate.
var ErrUpdateTooLarge = errors.New("camelot: update exceeds log record capacity")
