package camelot

import (
	"testing"
	"time"
)

func waitForSegReaps(t *testing.T, dm *DiskManager, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if dm.Stats().SegmentReaps == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("segment reaps stuck at %d, want %d", dm.Stats().SegmentReaps, want)
}

// TestSegmentReapedOnClientDeath is the camelot kill-the-client test: a
// client dying mid-transaction has its attachment reaped by no-senders
// — committed data survives on disk, the loser transaction is rolled
// back by recovery, and a fresh client can re-attach.
func TestSegmentReapedOnClientDeath(t *testing.T) {
	k, dm, c := newCamelot(t, 256)
	if err := c.CreateSegment("s", 4*pgsz); err != nil {
		t.Fatal(err)
	}
	seg, err := c.Attach("s")
	if err != nil {
		t.Fatal(err)
	}
	// A committed transaction, then an in-flight one the client dies
	// holding.
	tx := c.Begin()
	if err := tx.Write(seg, 0, []byte("COMMITTED")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	loser := c.Begin()
	if err := loser.Write(seg, 16, []byte("LOST")); err != nil {
		t.Fatal(err)
	}

	c.task.Terminate()
	waitForSegReaps(t, dm, 1)

	// The reap forced the log; crash-and-recover rolls the loser back.
	dm.Crash()
	dm.Recover()
	data, err := dm.SegmentBytes("s")
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:9]) != "COMMITTED" {
		t.Fatalf("committed data lost: %q", data[:16])
	}
	if string(data[16:20]) == "LOST" {
		t.Fatal("loser transaction survived recovery")
	}

	// The durable segment is re-attachable by a fresh client.
	app2 := k.NewTask()
	svc2, err := dm.Publish(app2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := Open(app2, svc2)
	seg2, err := c2.Attach("s")
	if err != nil {
		t.Fatal(err)
	}
	got, err := seg2.Read(0, 9)
	if err != nil || string(got) != "COMMITTED" {
		t.Fatalf("re-attached read %q %v", got, err)
	}
}
