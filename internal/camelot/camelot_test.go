package camelot

import (
	"bytes"
	"testing"

	"time"

	"repro/internal/kern"
	"repro/internal/machine"
)

const pgsz = 256

func newCamelot(t *testing.T, frames int) (*kern.Kernel, *DiskManager, *Client) {
	t.Helper()
	k := kern.NewKernel(kern.Config{Frames: frames, PageSize: pgsz})
	t.Cleanup(k.Shutdown)
	dataDisk := machine.NewDisk(1024, pgsz, machine.DefaultDiskLatency, k.Clock())
	logDisk := machine.NewDisk(4096, pgsz, machine.DefaultDiskLatency, k.Clock())
	dm, err := NewDiskManager(k, dataDisk, logDisk)
	if err != nil {
		t.Fatal(err)
	}
	go dm.Run()
	t.Cleanup(dm.Stop)
	app := k.NewTask()
	svc, err := dm.Publish(app)
	if err != nil {
		t.Fatal(err)
	}
	return k, dm, Open(app, svc)
}

func TestCommitVisibleInMemory(t *testing.T) {
	_, _, c := newCamelot(t, 256)
	if err := c.CreateSegment("accts", 4*pgsz); err != nil {
		t.Fatal(err)
	}
	seg, err := c.Attach("accts")
	if err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	if err := tx.Write(seg, 0, []byte("balance=100")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := seg.Read(0, 11)
	if err != nil || string(got) != "balance=100" {
		t.Fatalf("read %q %v", got, err)
	}
}

func TestAbortRollsBackMemory(t *testing.T) {
	_, dm, c := newCamelot(t, 256)
	c.CreateSegment("s", pgsz)
	seg, _ := c.Attach("s")
	tx1 := c.Begin()
	tx1.Write(seg, 0, []byte("AAAA"))
	tx1.Commit()

	tx2 := c.Begin()
	tx2.Write(seg, 0, []byte("BBBB"))
	tx2.Write(seg, 8, []byte("CCCC"))
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	got, _ := seg.Read(0, 4)
	if string(got) != "AAAA" {
		t.Fatalf("after abort %q", got)
	}
	got, _ = seg.Read(8, 4)
	if !bytes.Equal(got, make([]byte, 4)) {
		t.Fatalf("aborted second write survives: %v", got)
	}
	st := dm.Stats()
	if st.Commits != 1 || st.Aborts != 1 {
		t.Fatalf("outcomes %+v", st)
	}
}

func TestCommitSurvivesCrash(t *testing.T) {
	_, dm, c := newCamelot(t, 256)
	c.CreateSegment("data", 2*pgsz)
	seg, _ := c.Attach("data")
	tx := c.Begin()
	tx.Write(seg, 10, []byte("durable!"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash BEFORE the dirty page was ever written to the data disk.
	dm.Crash()
	if n := dm.Recover(); n == 0 {
		t.Fatal("recovery replayed nothing")
	}
	data, err := dm.SegmentBytes("data")
	if err != nil {
		t.Fatal(err)
	}
	if string(data[10:18]) != "durable!" {
		t.Fatalf("committed data lost: %q", data[10:18])
	}
}

func TestUncommittedRolledBackAtRecovery(t *testing.T) {
	_, dm, c := newCamelot(t, 256)
	c.CreateSegment("mix", pgsz)
	seg, _ := c.Attach("mix")
	// Committed baseline.
	tx1 := c.Begin()
	tx1.Write(seg, 0, []byte("GOOD"))
	tx1.Commit()
	// In-flight transaction: updates logged (and FORCED by the WAL
	// check when we flush the page below), but never committed.
	tx2 := c.Begin()
	tx2.Write(seg, 0, []byte("EVIL"))
	// Force the dirty page to disk through the pager: the manager must
	// force the log first (WAL), making tx2's undo information durable.
	dm.mu.Lock()
	mo := dm.segments["mix"].mo
	dm.mu.Unlock()
	if err := mo.FlushRequest(0, pgsz); err != nil {
		t.Fatal(err)
	}
	// Wait until the page write reached the manager.
	deadline := time.Now().Add(2 * time.Second)
	for dm.Stats().PageWrites == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := dm.Stats()
	if st.PageWrites == 0 {
		t.Fatal("flush write never arrived")
	}
	if st.WALForces == 0 {
		t.Fatal("WAL force did not happen before page write")
	}
	dm.Crash()
	dm.Recover()
	data, _ := dm.SegmentBytes("mix")
	if string(data[:4]) != "GOOD" {
		t.Fatalf("recovery produced %q, want GOOD (tx2 undone)", data[:4])
	}
}

func TestWALOrderingUnderEviction(t *testing.T) {
	// Tiny kernel memory: recoverable pages get evicted mid-
	// transaction. Every page write must be preceded by a log force.
	_, dm, c := newCamelot(t, 16)
	c.CreateSegment("big", 32*pgsz)
	seg, err := c.Attach("big")
	if err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	for i := 0; i < 32; i++ {
		if err := tx.Write(seg, uint64(i)*pgsz, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st := dm.Stats()
	if st.PageWrites == 0 {
		t.Fatal("no evictions despite pressure")
	}
	// Committed data recoverable even though pages were written
	// piecemeal during the transaction.
	dm.Crash()
	dm.Recover()
	data, _ := dm.SegmentBytes("big")
	for i := 0; i < 32; i++ {
		if data[i*pgsz] != byte(i+1) {
			t.Fatalf("page %d lost after eviction+crash: %d", i, data[i*pgsz])
		}
	}
}

func TestMultipleTransactionsInterleaved(t *testing.T) {
	_, dm, c := newCamelot(t, 256)
	c.CreateSegment("t", pgsz)
	seg, _ := c.Attach("t")
	txA := c.Begin()
	txB := c.Begin()
	txA.Write(seg, 0, []byte{1})
	txB.Write(seg, 16, []byte{2})
	txA.Write(seg, 32, []byte{3})
	txA.Commit()
	// txB never commits.
	dm.Crash()
	dm.Recover()
	data, _ := dm.SegmentBytes("t")
	if data[0] != 1 || data[32] != 3 {
		t.Fatalf("committed txA lost: %v %v", data[0], data[32])
	}
	if data[16] != 0 {
		t.Fatalf("uncommitted txB survived: %v", data[16])
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	_, dm, c := newCamelot(t, 256)
	c.CreateSegment("i", pgsz)
	seg, _ := c.Attach("i")
	tx := c.Begin()
	tx.Write(seg, 0, []byte("X"))
	tx.Commit()
	dm.Crash()
	dm.Recover()
	first, _ := dm.SegmentBytes("i")
	dm.Recover()
	second, _ := dm.SegmentBytes("i")
	if !bytes.Equal(first, second) {
		t.Fatal("recovery not idempotent")
	}
}

func TestLogRecordCodecRoundTrip(t *testing.T) {
	r := record{lsn: 42, tx: 7, kind: recUpdate, seg: 3, offset: 1000,
		old: []byte("before"), new: []byte("afterward")}
	b := encodeRecord(&r, 256)
	got, ok := decodeRecord(b)
	if !ok {
		t.Fatal("decode failed")
	}
	if got.lsn != 42 || got.tx != 7 || got.kind != recUpdate || got.seg != 3 ||
		got.offset != 1000 || string(got.old) != "before" || string(got.new) != "afterward" {
		t.Fatalf("round trip %+v", got)
	}
	if _, ok := decodeRecord(make([]byte, 256)); ok {
		t.Fatal("zero block decoded as record")
	}
}

func TestSegmentNotFound(t *testing.T) {
	_, _, c := newCamelot(t, 128)
	if _, err := c.Attach("ghost"); err != ErrNoSegment {
		t.Fatalf("attach ghost: %v", err)
	}
}
