package obs

import "fmt"

// Well-known metric bundles. Each instrumented subsystem resolves its
// bundle once (at Space/Server/pool construction — never on a message
// path) and records through the returned handles directly. The
// registry's get-or-create semantics make every resolution of the same
// name return the same underlying metric, so bundles are cheap to
// re-resolve and never need a second cache.
//
// Naming: dotted paths with a "hostN." prefix for per-kernel metrics.
// One process simulates a whole complex of kernels; the prefix keeps
// each kernel's numbers apart, which is what ROADMAP item 3 (scale-out
// measurement) needs.

// HostPrefix returns the metric-name prefix for one simulated kernel.
func HostPrefix(host int) string { return fmt.Sprintf("host%d.", host) }

// IPCMetrics is one kernel's IPC instrumentation. Spaces on the same
// host share a bundle — granularity is per host, not per space.
type IPCMetrics struct {
	// Sends counts messages entering Send/RawSend on this host.
	Sends *Counter
	// Receives counts messages delivered by Receive/RawReceive.
	Receives *Counter
	// Handoffs counts direct sender-to-receiver handoffs (the queue
	// was bypassed because a receiver was already parked).
	Handoffs *Counter
	// Stalls counts sends that found the destination backlog full and
	// had to wait (or bounce, when non-blocking).
	Stalls *Counter
	// DeadLetters counts kernel notifications dropped on the floor.
	DeadLetters *Counter
	// ReplyPool tracks idle pooled RPC reply ports across the host's
	// spaces.
	ReplyPool *Gauge
	// Latency is the sampled send-to-receive message latency in
	// nanoseconds. Only every latencySampleEvery-th message is timed:
	// two time.Now() calls would be ~20% of the fast path, far outside
	// the instrumentation budget, so the latency distribution is
	// sampled while the counters stay exact.
	Latency *Histogram
}

// LatencySampleEvery is the message-latency sampling period: one
// message in every LatencySampleEvery is timestamped at send and its
// queue latency recorded at receive. The sampling decision reuses the
// send-counter value the path already pays for, so unsampled messages
// spend zero extra atomics on it.
const LatencySampleEvery = 64

// IPCHost returns host's IPC bundle from the default registry.
func IPCHost(host int) *IPCMetrics {
	r := Default()
	p := HostPrefix(host) + "ipc."
	return &IPCMetrics{
		Sends:       r.Counter(p + "sends"),
		Receives:    r.Counter(p + "receives"),
		Handoffs:    r.Counter(p + "handoffs"),
		Stalls:      r.Counter(p + "queue_full_stalls"),
		DeadLetters: r.Counter(p + "dead_letters"),
		ReplyPool:   r.Gauge(p + "reply_pool"),
		Latency:     r.Histogram(p + "latency_ns"),
	}
}

// RPCMetrics is one kernel's RPC-server instrumentation.
type RPCMetrics struct {
	// BatchSizes is the distribution of calls per MsgBatch container.
	BatchSizes *Histogram
}

// RPCHost returns host's RPC bundle.
func RPCHost(host int) *RPCMetrics {
	r := Default()
	p := HostPrefix(host) + "rpc."
	return &RPCMetrics{
		BatchSizes: r.Histogram(p + "batch_size"),
	}
}

// RPCMethod is the per-MsgID instrumentation of one registered RPC
// handler, resolved at Handle registration time.
type RPCMethod struct {
	// Calls counts invocations of the handler.
	Calls *Counter
	// Latency is the handler service time in nanoseconds (every call
	// is timed: handler dispatch is not the sub-µs fast path).
	Latency *Histogram
}

// RPCMethodMetrics returns the bundle for one (host, MsgID) handler.
func RPCMethodMetrics(host int, msgID int32) *RPCMethod {
	r := Default()
	p := fmt.Sprintf("%srpc.msg%d.", HostPrefix(host), msgID)
	return &RPCMethod{
		Calls:   r.Counter(p + "calls"),
		Latency: r.Histogram(p + "latency_ns"),
	}
}

// NetmsgMetrics is one kernel's network-message-server instrumentation.
type NetmsgMetrics struct {
	// ProxiesCreated/Retired/Died count proxy port lifecycle events.
	ProxiesCreated *Counter
	ProxiesRetired *Counter
	ProxiesDied    *Counter
	// CacheHits counts remote lookups satisfied by the local proxy
	// cache instead of a control round-trip; NegCacheHits the misses
	// answered from the negative cache the same way.
	CacheHits    *Counter
	NegCacheHits *Counter
	// HomeLookups counts cold lookups resolved by asking the name's
	// consistent-hash home node — one control round trip each,
	// independent of host count.
	HomeLookups *Counter
	// InvalidationsSent/Recv count directory invalidation pushes (a
	// replaced or dead record, or a name appearing that peers hold
	// negative entries for).
	InvalidationsSent *Counter
	InvalidationsRecv *Counter
	// Proxies is the live proxy population; DirEntries the directory
	// records (home or replica) this host currently serves.
	Proxies    *Gauge
	DirEntries *Gauge
}

// NetmsgHost returns host's netmsg bundle.
func NetmsgHost(host int) *NetmsgMetrics {
	r := Default()
	p := HostPrefix(host) + "netmsg."
	return &NetmsgMetrics{
		ProxiesCreated:    r.Counter(p + "proxies_created"),
		ProxiesRetired:    r.Counter(p + "proxies_retired"),
		ProxiesDied:       r.Counter(p + "proxies_died"),
		CacheHits:         r.Counter(p + "lookup_cache_hits"),
		NegCacheHits:      r.Counter(p + "neg_cache_hits"),
		HomeLookups:       r.Counter(p + "lookups_home"),
		InvalidationsSent: r.Counter(p + "invalidations_sent"),
		InvalidationsRecv: r.Counter(p + "invalidations_recv"),
		Proxies:           r.Gauge(p + "proxies"),
		DirEntries:        r.Gauge(p + "dir_entries"),
	}
}

// NetmsgPeerMetrics counts one kernel's traffic toward one remote peer.
type NetmsgPeerMetrics struct {
	// Msgs/Bytes count forwarded user messages and their payload
	// bytes; ControlMsgs counts protocol traffic (lookups, transfers).
	Msgs        *Counter
	Bytes       *Counter
	ControlMsgs *Counter
}

// NetmsgPeer returns the (host -> peer) traffic bundle.
func NetmsgPeer(host, peer int) *NetmsgPeerMetrics {
	r := Default()
	p := fmt.Sprintf("%snetmsg.peer%d.", HostPrefix(host), peer)
	return &NetmsgPeerMetrics{
		Msgs:        r.Counter(p + "msgs"),
		Bytes:       r.Counter(p + "bytes"),
		ControlMsgs: r.Counter(p + "control_msgs"),
	}
}

// LoadGenMetrics instruments the open-loop load generator driving a
// simulated complex (machbench E12): arrivals are clocked, not gated
// on completions, so latency under overload is visible instead of
// hidden by coordinated omission.
type LoadGenMetrics struct {
	// Sessions counts client sessions started; Lookups and Calls the
	// name resolutions and service RPCs they issued; Errors any of
	// either that failed.
	Sessions *Counter
	Lookups  *Counter
	Calls    *Counter
	Errors   *Counter
	// LookupLatency and CallLatency are wall-clock nanoseconds per
	// LookUp and per service RPC.
	LookupLatency *Histogram
	CallLatency   *Histogram
}

// LoadGen returns the process-global load-generator bundle.
func LoadGen() *LoadGenMetrics {
	r := Default()
	return &LoadGenMetrics{
		Sessions:      r.Counter("loadgen.sessions"),
		Lookups:       r.Counter("loadgen.lookups"),
		Calls:         r.Counter("loadgen.calls"),
		Errors:        r.Counter("loadgen.errors"),
		LookupLatency: r.Histogram("loadgen.lookup_ns"),
		CallLatency:   r.Histogram("loadgen.rpc_ns"),
	}
}

// PagerMetrics is the external-pager / frame-pool instrumentation,
// process-global (frame pools are per backing object, not per host).
type PagerMetrics struct {
	// ColdFaults are faults that went to the backing store; WarmFaults
	// were satisfied from resident frames.
	ColdFaults *Counter
	WarmFaults *Counter
	Evictions  *Counter
	Writebacks *Counter
}

// Pager returns the global pager bundle.
func Pager() *PagerMetrics {
	r := Default()
	return &PagerMetrics{
		ColdFaults: r.Counter("pager.faults_cold"),
		WarmFaults: r.Counter("pager.faults_warm"),
		Evictions:  r.Counter("pager.evictions"),
		Writebacks: r.Counter("pager.writebacks"),
	}
}

// IOMetrics is the async I/O manager instrumentation, process-global.
type IOMetrics struct {
	Submitted    *Counter
	Completed    *Counter
	Errors       *Counter
	Batches      *Counter
	BytesRead    *Counter
	BytesWritten *Counter
	Fsyncs       *Counter
}

// IO returns the global iomgr bundle.
func IO() *IOMetrics {
	r := Default()
	return &IOMetrics{
		Submitted:    r.Counter("iomgr.submitted"),
		Completed:    r.Counter("iomgr.completed"),
		Errors:       r.Counter("iomgr.errors"),
		Batches:      r.Counter("iomgr.batches"),
		BytesRead:    r.Counter("iomgr.bytes_read"),
		BytesWritten: r.Counter("iomgr.bytes_written"),
		Fsyncs:       r.Counter("iomgr.fsyncs"),
	}
}

// WALMetrics is the recoverable-storage (camelot) WAL instrumentation.
type WALMetrics struct {
	// Appends counts records appended; Forces counts force (commit)
	// requests; Fsyncs counts device syncs actually issued — group
	// commit makes Fsyncs/Forces the batching ratio.
	Appends *Counter
	Forces  *Counter
	Fsyncs  *Counter
}

// WAL returns the global WAL bundle.
func WAL() *WALMetrics {
	r := Default()
	return &WALMetrics{
		Appends: r.Counter("camelot.wal_appends"),
		Forces:  r.Counter("camelot.wal_forces"),
		Fsyncs:  r.Counter("camelot.wal_fsyncs"),
	}
}
