package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	if got := c.Inc(); got != 1 {
		t.Fatalf("Inc = %d, want 1", got)
	}
	c.Add(9)
	if got := c.Load(); got != 10 {
		t.Fatalf("Load = %d, want 10", got)
	}
	var g Gauge
	g.Set(5)
	g.Add(-7)
	if got := g.Load(); got != -2 {
		t.Fatalf("gauge = %d, want -2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestHistogramQuantileBounds is the satellite-required bound check: a
// reported quantile must be within one log2 bucket of the recorded
// value — i.e. the recorded value is <= the report, and the report is
// less than twice the recorded value (the bucket's width).
func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	// 99% fast samples and 1% slow ones: p50/p99 must land on the fast
	// value and p999 on the slow one, each within its log2 bucket.
	const fast, slow = 250, 9_000_000
	for i := 0; i < 990; i++ {
		h.Record(fast)
	}
	for i := 0; i < 10; i++ {
		h.Record(slow)
	}
	s := h.snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	for _, c := range []struct {
		name     string
		got      uint64
		recorded uint64
	}{
		{"p50", s.P50(), fast},
		{"p99", s.P99(), fast},
		{"p999", s.P999(), slow},
	} {
		if c.got < c.recorded || c.got >= 2*c.recorded {
			t.Errorf("%s = %d, want within one bucket of %d (i.e. [%d, %d))",
				c.name, c.got, c.recorded, c.recorded, 2*c.recorded)
		}
	}
	// Mean is a bucket-midpoint estimate: every sample is charged at the
	// midpoint of its log2 bucket, which is within a factor of 1.5 of
	// the sample, so the estimated mean must be too.
	const trueMean = (990*fast + 10*slow) / 1000.0
	if m := s.Mean(); m < trueMean/1.5 || m > trueMean*1.5 {
		t.Errorf("mean = %f, want within 1.5x of %f", m, trueMean)
	}
}

func TestHistogramQuantileEdge(t *testing.T) {
	var h Histogram
	s := h.snapshot()
	if s.P99() != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot: p99=%d mean=%f, want 0", s.P99(), s.Mean())
	}
	h.Record(0)
	s = h.snapshot()
	if got := s.Quantile(1); got != 0 {
		t.Fatalf("Quantile(1) of {0} = %d, want 0", got)
	}
}

// TestConcurrentRecording hammers one histogram and one counter from 16
// goroutines; run under -race it proves the record path is data-race
// free, and the totals prove no sample is lost.
func TestConcurrentRecording(t *testing.T) {
	const goroutines = 16
	const perG = 10_000
	var h Histogram
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(int64(g*perG + i + 1))
				c.Inc()
			}
		}(g)
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistrySnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.sends").Add(10)
	r.Gauge("a.pool").Set(3)
	r.Histogram("a.lat").Record(100)
	r.RegisterFunc("a.sampled", func() int64 { return 42 })
	prev := r.Snapshot()

	r.Counter("a.sends").Add(5)
	r.Histogram("a.lat").Record(200)
	cur := r.Snapshot()

	d := cur.Diff(prev)
	if got := d.Counters["a.sends"]; got != 5 {
		t.Fatalf("diff sends = %d, want 5", got)
	}
	if got := d.Gauges["a.pool"]; got != 3 {
		t.Fatalf("diff gauge = %d, want current value 3", got)
	}
	if got := d.Gauges["a.sampled"]; got != 42 {
		t.Fatalf("sampled func = %d, want 42", got)
	}
	if got := d.Hists["a.lat"].Count; got != 1 {
		t.Fatalf("diff hist count = %d, want 1", got)
	}
	tab := d.Table()
	if !strings.Contains(tab, "a.sends") || !strings.Contains(tab, "p99") {
		t.Fatalf("table missing rows:\n%s", tab)
	}
	// The same metric resolves to the same handle.
	if r.Counter("a.sends") != r.Counter("a.sends") {
		t.Fatal("get-or-create returned distinct counters for one name")
	}
}

func TestRegistryFuncLifecycle(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("x", func() int64 { return 7 })
	if got := r.Snapshot().Gauges["x"]; got != 7 {
		t.Fatalf("func gauge = %d, want 7", got)
	}
	r.UnregisterFunc("x")
	if _, ok := r.Snapshot().Gauges["x"]; ok {
		t.Fatal("unregistered func still sampled")
	}
}

func TestTraceSampling(t *testing.T) {
	defer SetTraceSampling(SetTraceSampling(0))
	SetTraceSampling(0)
	if id := SampleTraceID(); id != 0 {
		t.Fatalf("sampling off: id = %d, want 0", id)
	}
	SetTraceSampling(1)
	a, b := SampleTraceID(), SampleTraceID()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("rate 1: ids %d, %d — want distinct non-zero", a, b)
	}
	SetTraceSampling(4)
	sampled := 0
	for i := 0; i < 400; i++ {
		if SampleTraceID() != 0 {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("rate 4: sampled %d of 400, want 100", sampled)
	}
}

func TestRecorderAndTrace(t *testing.T) {
	ResetTrace()
	defer ResetTrace()
	id := NewTraceID()
	other := NewTraceID()
	RecordHop(1, id, HopSend, 77, 10)
	RecordHop(1, id, HopEnqueue, 77, 10)
	RecordHop(0, id, HopReceive, 77, 10)
	RecordHop(0, other, HopSend, 5, 3)
	RecordHop(2, 0, HopSend, 9, 9) // untraced: must be dropped

	evs := Trace(id)
	if len(evs) != 3 {
		t.Fatalf("Trace(%d) = %d events, want 3", id, len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatal("trace events not time-ordered")
		}
	}
	hosts := map[int32]bool{}
	for _, e := range evs {
		hosts[e.Host] = true
		if e.Trace != id {
			t.Fatalf("foreign trace %d in timeline", e.Trace)
		}
	}
	if !hosts[0] || !hosts[1] {
		t.Fatalf("timeline hosts = %v, want both 0 and 1", hosts)
	}
	out := FormatTrace(evs)
	if !strings.Contains(out, "enqueue") || !strings.Contains(out, "host1") {
		t.Fatalf("FormatTrace output:\n%s", out)
	}
	if all := TraceEvents(); len(all) != 4 {
		t.Fatalf("TraceEvents = %d, want 4", len(all))
	}
}

func TestRecorderRingBounded(t *testing.T) {
	var r Recorder
	for i := 0; i < 3*ringSize; i++ {
		r.record(&Event{Trace: uint64(i + 1)})
	}
	evs := r.events(nil)
	if len(evs) != ringSize {
		t.Fatalf("ring holds %d events, want %d", len(evs), ringSize)
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	in := []Event{
		{Trace: 1, TS: 123456789, Host: 0, Hop: HopSend, MsgID: 700, Port: 42},
		{Trace: 1, TS: 123456999, Host: 3, Hop: HopReply, MsgID: -1, Port: 0},
		{Trace: ^uint64(0), TS: -1, Host: -2, Hop: Hop(200), MsgID: 1 << 30, Port: ^uint64(0)},
	}
	b := EncodeEvents(in)
	if len(b) != len(in)*eventWireSize {
		t.Fatalf("encoded %d bytes, want %d", len(b), len(in)*eventWireSize)
	}
	out, err := DecodeEvents(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
	// Truncation: the complete prefix decodes, the tail errors.
	out, err = DecodeEvents(b[:len(b)-1])
	if err != ErrTruncatedEvent {
		t.Fatalf("truncated decode err = %v, want ErrTruncatedEvent", err)
	}
	if len(out) != len(in)-1 {
		t.Fatalf("truncated decode kept %d events, want %d", len(out), len(in)-1)
	}
}

func TestWellKnownBundles(t *testing.T) {
	// Bundles resolve to stable handles in the default registry.
	if IPCHost(9).Sends != IPCHost(9).Sends {
		t.Fatal("IPCHost not stable")
	}
	if NetmsgPeer(9, 8).Bytes != NetmsgPeer(9, 8).Bytes {
		t.Fatal("NetmsgPeer not stable")
	}
	if RPCMethodMetrics(9, 1234).Calls != RPCMethodMetrics(9, 1234).Calls {
		t.Fatal("RPCMethodMetrics not stable")
	}
	if Pager().ColdFaults != Pager().ColdFaults || IO().Fsyncs != IO().Fsyncs || WAL().Forces != WAL().Forces {
		t.Fatal("global bundles not stable")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkSampleTraceIDOff(b *testing.B) {
	SetTraceSampling(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if SampleTraceID() != 0 {
			b.Fatal("sampled while off")
		}
	}
}
