// Package obs is the kernel-wide observability layer: allocation-free
// metrics (cache-line-padded atomic counters and gauges, fixed-bucket
// log2 latency histograms) in a named registry with a Snapshot/Diff
// API, plus sampled cross-host message tracing captured in bounded
// per-kernel flight-recorder rings.
//
// The paper's whole argument is quantitative — message counts per
// operation, fault latencies, remote-vs-local cost ratios — so the
// instrumentation is always compiled into the hot subsystems (ipc,
// rpc, netmsg, pager, iomgr, camelot) under a hard budget: recording a
// counter is one atomic add, recording a histogram sample is one
// atomic add into a precomputed bucket index, and an unsampled trace
// costs one atomic load and a branch. Nothing on a record path takes a
// lock or allocates.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. It occupies its own
// cache line so two hot counters updated by different CPUs never
// false-share (the classic way "just one atomic add" turns into a
// cross-core ping).
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one and returns the new value. Returning the value lets a
// caller derive a sampling decision (every Nth event) from the count
// it already paid for, without a second atomic.
func (c *Counter) Inc() uint64 { return c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, pool sizes,
// live proxy population), padded like Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the fixed bucket count of every Histogram: bucket i
// holds samples whose value v satisfies 2^(i-1) <= v < 2^i (bucket 0
// holds v <= 0 and v == 1 lands in bucket 1), so 64 buckets cover the
// full uint64 range with log2 resolution — enough to read p50/p99/p999
// off nanosecond latencies without locks or dynamic resizing.
const HistBuckets = 64

// Histogram is a fixed-bucket log2 histogram. Record is exactly one
// atomic add into a precomputed bucket index — there is no separate
// count or sum cell, so the record path cannot cost more than a
// counter. Quantiles, the sample count and a bucket-midpoint estimate
// of the sum are all derived at snapshot time from the bucket counts.
// The reported quantile value is the upper bound of the bucket
// containing it, so any reported quantile is within one power of two
// of the true sample.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
}

// bucketOf returns the bucket index for v.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Record adds one sample. Values <= 0 land in bucket 0.
func (h *Histogram) Record(v int64) {
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of recorded samples (a sum over the bucket
// cells; nothing on a record path needs it).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// snapshot copies the bucket counts into a HistSnapshot. The copy is
// not atomic across buckets — concurrent recording may be torn across
// the scan — which is fine for monitoring: every bucket value is a
// valid point in that bucket's own history.
func (h *Histogram) snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.fillDerived()
	return s
}

// HistSnapshot is a point-in-time copy of a histogram. Count and Sum
// are derived from Buckets (Sum charges every sample its bucket's
// midpoint, so it is an estimate within ±50% per sample).
type HistSnapshot struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
}

// fillDerived recomputes Count and Sum from Buckets.
func (s *HistSnapshot) fillDerived() {
	s.Count, s.Sum = 0, 0
	for i, n := range s.Buckets {
		s.Count += n
		s.Sum += n * bucketMid(i)
	}
}

// bucketMid is the midpoint of bucket i — the per-sample value the Sum
// estimate charges for samples landing there.
func bucketMid(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i == 1 {
		return 1
	}
	lower := uint64(1) << uint(i-1)
	return lower + (lower-1)/2
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound
// of the bucket holding the q-th sample, i.e. within one log2 bucket
// of the true sample value. Returns 0 for an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based; q=0 means the first sample.
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(HistBuckets - 1)
}

// bucketUpper is the (inclusive) upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		i = 64
	}
	if i == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(i) - 1
}

// P50, P99 and P999 are the quantiles the experiments report.
func (s *HistSnapshot) P50() uint64  { return s.Quantile(0.50) }
func (s *HistSnapshot) P99() uint64  { return s.Quantile(0.99) }
func (s *HistSnapshot) P999() uint64 { return s.Quantile(0.999) }

// Mean returns the arithmetic mean of the recorded samples, estimated
// from the bucket midpoints (each sample is within a factor of 1.5 of
// the midpoint it is charged at), or 0 for an empty snapshot.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Diff returns the histogram activity between prev and s (s - prev,
// per bucket). Buckets that went backwards (a restarted registry)
// clamp to zero.
func (s HistSnapshot) Diff(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range s.Buckets {
		if s.Buckets[i] >= prev.Buckets[i] {
			d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		}
	}
	d.fillDerived()
	return d
}
