package obs

import (
	"bytes"
	"testing"
)

// FuzzTraceEventDecode throws arbitrary bytes at the flight-recorder
// dump decoder. Invariants: no panic on any input; every complete
// record decodes; a decoded prefix re-encodes to exactly the bytes it
// was decoded from (the codec is bijective on valid records).
func FuzzTraceEventDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, eventWireSize-1))
	f.Add(make([]byte, eventWireSize))
	f.Add(EncodeEvents([]Event{
		{Trace: 1, TS: 2, Host: 3, Hop: HopEnqueue, MsgID: 4, Port: 5},
		{Trace: ^uint64(0), TS: -1, Host: -1, Hop: Hop(255), MsgID: -1, Port: ^uint64(0)},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		evs, err := DecodeEvents(b)
		complete := len(b) / eventWireSize
		if len(evs) != complete {
			t.Fatalf("decoded %d events from %d bytes, want %d", len(evs), len(b), complete)
		}
		if (len(b)%eventWireSize != 0) != (err != nil) {
			t.Fatalf("len=%d err=%v: truncation error iff trailing bytes", len(b), err)
		}
		re := EncodeEvents(evs)
		if !bytes.Equal(re, b[:complete*eventWireSize]) {
			t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", b[:complete*eventWireSize], re)
		}
	})
}
