package obs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Message tracing: an optional sampled trace ID is stamped into a
// message header at send time, propagated through RPC replies, batch
// containers and the netmsg relay across hosts, and every hop (send,
// enqueue, proxy-forward, receive, reply) appends an event to the
// local kernel's flight recorder — a bounded ring, so tracing can stay
// on in production without growing memory. Trace(id) reconstructs the
// hop timeline spanning kernels.
//
// Cost discipline: with sampling disabled (the default) the send path
// pays one atomic load and a branch; nothing else runs. A sampled
// message allocates its events — sampling bounds that cost, and the
// fast-path alloc pins (0 allocs/op) hold because they run unsampled.

// Hop identifies what happened to a traced message at one point.
type Hop uint8

const (
	// HopSend is a task-level msg_send (or kernel RawSend) entering
	// the IPC layer.
	HopSend Hop = iota
	// HopEnqueue is the message landing on its destination port's
	// queue (recorded against the queue's home host).
	HopEnqueue
	// HopProxyForward is a netmsg forwarder relaying the message from
	// a proxy queue toward the home port on another host.
	HopProxyForward
	// HopReceive is a task-level msg_receive delivering the message.
	HopReceive
	// HopReply is an RPC server sending the reply to a traced request
	// (the reply message carries the same trace ID).
	HopReply
)

var hopNames = [...]string{"send", "enqueue", "proxy-forward", "receive", "reply"}

// String names the hop for timelines and dumps.
func (h Hop) String() string {
	if int(h) < len(hopNames) {
		return hopNames[h]
	}
	return fmt.Sprintf("hop(%d)", uint8(h))
}

// Event is one hop of one traced message.
type Event struct {
	// Trace is the message's sampled trace ID (never 0 in a recorded
	// event).
	Trace uint64
	// TS is the wall-clock time of the hop in nanoseconds. All
	// kernels of a simulated complex share one process clock, so
	// cross-host timelines order correctly.
	TS int64
	// Host is the kernel the hop happened on.
	Host int32
	// Hop says what happened.
	Hop Hop
	// MsgID is the message's operation ID at this hop.
	MsgID int32
	// Port is the kernel-wide port ID involved (destination queue for
	// send/enqueue/forward, arrival queue for receive), 0 if unknown.
	Port uint64
}

// ringSize bounds each kernel's flight recorder (a power of two).
// 4096 events at ~48 bytes is ~200KiB per kernel — bounded, and deep
// enough to hold the full hop history of recent sampled traffic.
const ringSize = 4096

// Recorder is one kernel's flight recorder: a lock-free bounded ring
// of trace events. Slots are atomic pointers, so a reader can never
// observe a torn event; a lapped slot is simply overwritten.
type Recorder struct {
	pos  atomic.Uint64
	ring [ringSize]atomic.Pointer[Event]
}

// record appends one event.
func (r *Recorder) record(e *Event) {
	i := r.pos.Add(1) - 1
	r.ring[i%ringSize].Store(e)
}

// events copies out every live event in the ring.
func (r *Recorder) events(out []Event) []Event {
	for i := range r.ring {
		if e := r.ring[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// recorders maps host -> flight recorder. Hosts are small dense
// integers (machine.HostID); a fixed table keeps the lookup a single
// indexed atomic load on the (sampled) record path.
const maxHosts = 1024

var recorders [maxHosts]atomic.Pointer[Recorder]

// overflowRecorder catches hops recorded against out-of-range hosts so
// they are never silently dropped.
var overflowRecorder Recorder

// recorderFor returns host's recorder, creating it on first use.
func recorderFor(host int32) *Recorder {
	if host < 0 || host >= maxHosts {
		return &overflowRecorder
	}
	if r := recorders[host].Load(); r != nil {
		return r
	}
	r := new(Recorder)
	if recorders[host].CompareAndSwap(nil, r) {
		return r
	}
	return recorders[host].Load()
}

// Trace sampling state. rate == 0 disables tracing: SampleTraceID is
// then one atomic load and a branch, the whole cost tracing adds to an
// unsampled send.
var (
	traceRate atomic.Uint64
	traceSeq  atomic.Uint64
	traceIDs  atomic.Uint64
)

// SetTraceSampling turns tracing on (sample one send in every n; n=1
// traces everything) or off (n=0). It returns the previous rate so a
// scoped measurement can restore it.
func SetTraceSampling(n uint64) (prev uint64) {
	return traceRate.Swap(n)
}

// SampleTraceID returns a fresh trace ID for one message in every
// rate, and 0 (untraced) otherwise. The send path calls it only for
// messages that do not already carry a trace ID.
func SampleTraceID() uint64 {
	rate := traceRate.Load()
	if rate == 0 {
		return 0
	}
	if rate > 1 && traceSeq.Add(1)%rate != 0 {
		return 0
	}
	return traceIDs.Add(1)
}

// NewTraceID mints a trace ID unconditionally — for callers that want
// to trace one specific operation regardless of the sampling rate.
func NewTraceID() uint64 { return traceIDs.Add(1) }

// RecordHop appends one hop event to host's flight recorder. Callers
// guard with `trace != 0`, so the unsampled path never reaches here.
func RecordHop(host int32, trace uint64, hop Hop, msgID int32, port uint64) {
	if trace == 0 {
		return
	}
	recorderFor(host).record(&Event{
		Trace: trace,
		TS:    time.Now().UnixNano(),
		Host:  host,
		Hop:   hop,
		MsgID: msgID,
		Port:  port,
	})
}

// traceMu serializes whole-ring scans (Trace, TraceEvents, ResetTrace)
// against each other; recording stays lock-free.
var traceMu sync.Mutex

// TraceEvents returns every event currently held in any kernel's
// flight recorder, ordered by timestamp.
func TraceEvents() []Event {
	traceMu.Lock()
	defer traceMu.Unlock()
	var out []Event
	for i := range recorders {
		if r := recorders[i].Load(); r != nil {
			out = r.events(out)
		}
	}
	out = overflowRecorder.events(out)
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Trace reconstructs the hop timeline of one trace ID across every
// kernel: all matching events still in the flight recorders, ordered
// by timestamp. An old trace may have been lapped out of the bounded
// rings — tracing is a flight recorder, not a log.
func Trace(id uint64) []Event {
	all := TraceEvents()
	out := all[:0]
	for _, e := range all {
		if e.Trace == id {
			out = append(out, e)
		}
	}
	return out
}

// ResetTrace clears every flight recorder and restarts trace IDs —
// test and experiment isolation.
func ResetTrace() {
	traceMu.Lock()
	defer traceMu.Unlock()
	for i := range recorders {
		recorders[i].Store(nil)
	}
	for i := range overflowRecorder.ring {
		overflowRecorder.ring[i].Store(nil)
	}
	overflowRecorder.pos.Store(0)
}

// FormatTrace renders a trace's hop timeline, one line per hop with
// the offset from the first hop — the human view of Trace(id).
func FormatTrace(events []Event) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	var b strings.Builder
	t0 := events[0].TS
	for _, e := range events {
		fmt.Fprintf(&b, "%+10.3fus  host%-3d %-14s msg=%-6d port=%d\n",
			float64(e.TS-t0)/1e3, e.Host, e.Hop.String(), e.MsgID, e.Port)
	}
	return b.String()
}

// --- Wire/dump format ----------------------------------------------------
//
// TraceDump serializes flight-recorder contents so they can be written
// to disk, shipped off-host, or diffed in tests. The format is a
// sequence of fixed-size little-endian records:
//
//	[8 trace][8 ts][4 host][1 hop][4 msgid][8 port]  = 33 bytes

// eventWireSize is the encoded size of one Event.
const eventWireSize = 33

// ErrTruncatedEvent reports a dump that ends mid-record.
var ErrTruncatedEvent = errors.New("obs: truncated trace event")

// AppendEvent appends e's wire encoding to b.
func AppendEvent(b []byte, e Event) []byte {
	b = appendU64(b, e.Trace)
	b = appendU64(b, uint64(e.TS))
	b = appendU32(b, uint32(e.Host))
	b = append(b, byte(e.Hop))
	b = appendU32(b, uint32(e.MsgID))
	b = appendU64(b, e.Port)
	return b
}

// DecodeEvent decodes one event from the front of b, returning the
// remaining bytes. Short input returns ErrTruncatedEvent.
func DecodeEvent(b []byte) (Event, []byte, error) {
	if len(b) < eventWireSize {
		return Event{}, b, ErrTruncatedEvent
	}
	var e Event
	e.Trace = u64(b[0:])
	e.TS = int64(u64(b[8:]))
	e.Host = int32(u32(b[16:]))
	e.Hop = Hop(b[20])
	e.MsgID = int32(u32(b[21:]))
	e.Port = u64(b[25:])
	return e, b[eventWireSize:], nil
}

// EncodeEvents serializes a slice of events.
func EncodeEvents(events []Event) []byte {
	b := make([]byte, 0, len(events)*eventWireSize)
	for _, e := range events {
		b = AppendEvent(b, e)
	}
	return b
}

// DecodeEvents deserializes a dump produced by EncodeEvents. Trailing
// partial records return ErrTruncatedEvent along with every complete
// event decoded before the break.
func DecodeEvents(b []byte) ([]Event, error) {
	var out []Event
	for len(b) > 0 {
		e, rest, err := DecodeEvent(b)
		if err != nil {
			return out, err
		}
		out = append(out, e)
		b = rest
	}
	return out, nil
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func u64(b []byte) uint64 {
	return uint64(u32(b)) | uint64(u32(b[4:]))<<32
}
