package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is a named metric table. Metric handles are resolved once
// (get-or-create, under a lock) and recorded through directly — the
// registry is never consulted on a hot path. Names are dotted paths;
// per-host metrics use a "hostN." prefix (see IPCHost and friends in
// wellknown.go) so one process running a whole simulated complex keeps
// every kernel's numbers apart.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// funcs are snapshot-time sampled values: ad-hoc state (pool
	// sizes, map populations) surfaced without forcing the owner to
	// maintain a gauge on every mutation.
	funcs map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// defaultRegistry is the process-wide registry every instrumented
// subsystem records into. A simulated complex of many kernels is one
// process, so "kernel-wide" here means the whole complex, with
// per-host name prefixes keeping kernels apart.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// RegisterFunc installs (or replaces) a snapshot-time sampled value.
// fn must be safe to call from any goroutine.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// UnregisterFunc removes a sampled value (a stopped server's).
func (r *Registry) UnregisterFunc(name string) {
	r.mu.Lock()
	delete(r.funcs, name)
	r.mu.Unlock()
}

// Snapshot captures every metric's current value. Counter and gauge
// reads are individually atomic; the snapshot as a whole is not a
// consistent cut (no global lock is worth taking for monitoring).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	s := Snapshot{
		At:       time.Now(),
		Counters: make(map[string]uint64, len(r.counters)+len(r.funcs)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Hists[name] = h.snapshot()
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	r.mu.RUnlock()
	// Sampled values run outside the registry lock: they may take
	// their owner's locks, and nothing says those order after ours.
	for name, fn := range funcs {
		s.Gauges[name] = fn()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry.
type Snapshot struct {
	At       time.Time
	Counters map[string]uint64
	Gauges   map[string]int64
	Hists    map[string]HistSnapshot
}

// Diff returns the activity between prev and s: counters and histogram
// buckets subtracted (clamped at zero if a name restarted), gauges
// kept at their current (s) value, and the interval recorded so rates
// can be derived. Names present only in prev are dropped; names new in
// s diff against zero.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		At:       s.At,
		Counters: make(map[string]uint64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for name, v := range s.Counters {
		if p := prev.Counters[name]; v >= p {
			d.Counters[name] = v - p
		}
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Hists {
		d.Hists[name] = h.Diff(prev.Hists[name])
	}
	return d
}

// Interval returns the wall-clock span between two snapshots (used
// with Diff to turn counts into rates).
func (s Snapshot) Interval(prev Snapshot) time.Duration {
	return s.At.Sub(prev.At)
}

// Table renders the snapshot as an aligned name/value table, sorted by
// name: counters and gauges one line each, histograms as
// count/mean/p50/p99/p999. Zero-valued counters are skipped (the
// registry accumulates names for every host that ever existed in the
// process; a diff table would otherwise be mostly zeros).
func (s Snapshot) Table() string {
	type row struct{ name, value string }
	var rows []row
	for name, v := range s.Counters {
		if v == 0 {
			continue
		}
		rows = append(rows, row{name, fmt.Sprintf("%d", v)})
	}
	for name, v := range s.Gauges {
		if v == 0 {
			continue
		}
		rows = append(rows, row{name, fmt.Sprintf("%d", v)})
	}
	for name, h := range s.Hists {
		if h.Count == 0 {
			continue
		}
		rows = append(rows, row{name, fmt.Sprintf(
			"n=%d mean=%.0f p50=%d p99=%d p999=%d",
			h.Count, h.Mean(), h.P50(), h.P99(), h.P999())})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	w := 0
	for _, r := range rows {
		if len(r.name) > w {
			w = len(r.name)
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", w, r.name, r.value)
	}
	return b.String()
}
