// Package lifecycle is the consumer layer over the ipc port-lifecycle
// machinery: it drains a space's kernel notifications — port death
// (ipc.MsgIDPortDeleted) and no-more-senders (ipc.MsgIDNoSenders) — and
// dispatches them to per-name callbacks.
//
// The layer applies the make-send-count staleness check for its users:
// a no-senders notification that raced a newly minted send right fails
// ipc.Space.ConfirmNoSenders and is suppressed, and the request is
// re-armed automatically, so a callback only ever runs when the port
// really had no extant senders at confirmation time. (A right minted
// after confirmation can still race the callback; servers that mint
// rights outside their notification loop must tolerate a freshly handed
// out right naming already-reaped state.)
//
// A Watcher integrates in one of two ways:
//
//   - Run (own goroutine): receives on the space's notify port. Use for
//     spaces where no other loop consumes notifications (plain
//     rpc.Server tasks).
//   - Dispatch (embedded): servers whose manager loop receives with
//     ReceiveAny — fs, netmem, camelot — chain the watcher ahead of
//     their application demux: Default = func(m) { if !w.Dispatch(m) {
//     srv.Dispatch(m) } }.
package lifecycle

import (
	"sync"

	"repro/internal/ipc"
)

// msgWatcherStop is the private wakeup a Stop call sends to unblock a
// Run loop parked on the notify port.
const msgWatcherStop ipc.MsgID = -150

// Watcher dispatches one space's lifecycle notifications to registered
// callbacks. Callbacks run on the goroutine that calls Dispatch (the
// Run loop, or the embedding manager loop).
type Watcher struct {
	space *ipc.Space

	mu        sync.Mutex
	deaths    map[ipc.Name]func(ipc.Name)
	noSenders map[ipc.Name]func(ipc.Name)
	deadNames map[ipc.Name]func(ipc.Name)
	stopped   bool
}

// New creates a watcher over a space's notifications. Use at most one
// watcher per space.
func New(space *ipc.Space) *Watcher {
	return &Watcher{
		space:     space,
		deaths:    make(map[ipc.Name]func(ipc.Name)),
		noSenders: make(map[ipc.Name]func(ipc.Name)),
		deadNames: make(map[ipc.Name]func(ipc.Name)),
	}
}

// Space returns the watched space.
func (w *Watcher) Space() *ipc.Space { return w.space }

// OnPortDeath registers fn to run once when the named right's port dies
// (the space must hold a send right for the kernel to notify it).
// Registering again replaces the callback.
func (w *Watcher) OnPortDeath(n ipc.Name, fn func(ipc.Name)) {
	w.mu.Lock()
	w.deaths[n] = fn
	w.mu.Unlock()
}

// OnNoSenders arms a no-senders request on the named port (the space
// must hold the receive right) and registers fn to run once the
// notification fires and confirms. Stale notifications are suppressed
// and re-armed transparently. Registering again replaces the callback;
// after fn runs, a server wanting further notifications calls
// OnNoSenders again.
func (w *Watcher) OnNoSenders(n ipc.Name, fn func(ipc.Name)) error {
	w.mu.Lock()
	w.noSenders[n] = fn
	w.mu.Unlock()
	if err := w.space.RequestNoSenders(n); err != nil {
		w.mu.Lock()
		delete(w.noSenders, n)
		w.mu.Unlock()
		return err
	}
	return nil
}

// OnDeadName arms a dead-name notification for the named send right
// (ipc.Space.RequestDeadName on the space's notify port) and registers
// fn to run once the name goes dead and the notification confirms. The
// generation staleness check is applied for the caller: a notification
// that raced a deallocate-and-reallocate of the name is suppressed (by
// then the registration is moot — the name no longer means what it
// meant when fn was registered). Registering again replaces the
// callback; the request is one-shot.
//
// OnDeadName differs from OnPortDeath in scope and address: port-death
// notifications fire for every send right the space holds, while a
// dead-name request is armed per name — the Mach shape servers use to
// watch exactly the capabilities they care about.
func (w *Watcher) OnDeadName(n ipc.Name, fn func(ipc.Name)) error {
	w.mu.Lock()
	w.deadNames[n] = fn
	w.mu.Unlock()
	if err := w.space.RequestDeadName(n, w.space.NotifyPort()); err != nil {
		w.mu.Lock()
		delete(w.deadNames, n)
		w.mu.Unlock()
		return err
	}
	return nil
}

// Dispatch examines one received message and consumes it when it is a
// lifecycle notification this watcher has a registration for. It
// reports whether the message was consumed. Only messages that arrived
// on the space's notify port qualify: kernel notifications are only
// ever enqueued there, so a client sending a forged MsgIDPortDeleted to
// an ordinary service port can never consume a registration.
func (w *Watcher) Dispatch(m *ipc.Message) bool {
	if m.LocalPort != w.space.NotifyPort() {
		return false
	}
	switch m.ID {
	case ipc.MsgIDPortDeleted:
		n := ipc.DecodeName(m.InlineData())
		w.mu.Lock()
		fn := w.deaths[n]
		if fn != nil {
			delete(w.deaths, n)
		}
		w.mu.Unlock()
		if fn == nil {
			return false
		}
		fn(n)
		return true
	case ipc.MsgIDDeadName:
		n, gen := ipc.DecodeDeadName(m.InlineData())
		w.mu.Lock()
		fn, ok := w.deadNames[n]
		if ok {
			delete(w.deadNames, n)
		}
		w.mu.Unlock()
		if !ok {
			return false
		}
		if !w.space.ConfirmDeadName(n, gen) {
			// The task deallocated (and possibly reallocated) the name
			// while the notification sat queued: the registration's
			// subject is gone, so the callback must not run.
			return true
		}
		fn(n)
		return true
	case ipc.MsgIDNoSenders:
		n, ms := ipc.DecodeNoSenders(m.InlineData())
		w.mu.Lock()
		fn, ok := w.noSenders[n]
		w.mu.Unlock()
		if !ok {
			return false
		}
		confirmed, err := w.space.ConfirmNoSenders(n, ms)
		if err != nil {
			// The name is gone (the server already deallocated it);
			// the registration is moot.
			w.mu.Lock()
			delete(w.noSenders, n)
			w.mu.Unlock()
			return true
		}
		if !confirmed {
			// A send right was minted while the notification was in
			// flight: suppress it and wait for the next real zero.
			_ = w.space.RequestNoSenders(n)
			return true
		}
		w.mu.Lock()
		delete(w.noSenders, n)
		w.mu.Unlock()
		fn(n)
		return true
	}
	return false
}

// Chain returns a dispatch function that consumes lifecycle
// notifications and hands everything else to next — the canonical
// manager-loop integration:
//
//	mgr.Default = w.Chain(srv.Dispatch)
func (w *Watcher) Chain(next func(*ipc.Message)) func(*ipc.Message) {
	return func(m *ipc.Message) {
		if !w.Dispatch(m) {
			next(m)
		}
	}
}

// Run receives on the space's notify port and dispatches until Stop is
// called or the space dies. Only use it when no other loop receives the
// space's notifications (a manager loop's ReceiveAny would race it);
// embedded servers use Dispatch instead.
func (w *Watcher) Run() {
	notify := w.space.NotifyPort()
	for {
		m, err := w.space.Receive(notify, ipc.ReceiveOptions{})
		if err != nil {
			return
		}
		if m.ID == msgWatcherStop {
			w.mu.Lock()
			stopped := w.stopped
			w.mu.Unlock()
			if stopped {
				return
			}
			continue
		}
		w.Dispatch(m)
	}
}

// Stop wakes and terminates a Run loop. Dispatch-mode watchers need no
// Stop.
func (w *Watcher) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	// The space holds a send right to its own notify port, so the
	// wakeup is an ordinary (forced) self-send; if the space is already
	// dead the Run loop has exited on its own.
	_ = w.space.Send(&ipc.Message{ID: msgWatcherStop, RemotePort: w.space.NotifyPort()}, ipc.SendOptions{Force: true})
}
