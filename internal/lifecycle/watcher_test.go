package lifecycle

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ipc"
	"repro/internal/machine"
)

func newSpace() *ipc.Space { return ipc.NewSpace(machine.HostID(0), nil) }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWatcherRunNoSenders: a Run-mode watcher fires the callback when a
// client task dies holding the last send right.
func TestWatcherRunNoSenders(t *testing.T) {
	server := newSpace()
	w := New(server)
	go w.Run()
	defer w.Stop()

	n, err := server.AllocatePort()
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int32
	if err := w.OnNoSenders(n, func(got ipc.Name) {
		if got == n {
			fired.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}

	client := newSpace()
	if _, err := server.CopySendRight(client, n); err != nil {
		t.Fatal(err)
	}
	client.Destroy() // the kill-the-client moment
	waitFor(t, "no-senders callback", func() bool { return fired.Load() == 1 })
}

// TestWatcherSuppressesStale: a right minted while the notification is
// in flight suppresses the callback; the re-armed request fires later.
func TestWatcherSuppressesStale(t *testing.T) {
	server := newSpace()
	w := New(server)
	n, _ := server.AllocatePort()
	var fired atomic.Int32
	if err := w.OnNoSenders(n, func(ipc.Name) { fired.Add(1) }); err != nil {
		t.Fatal(err)
	}

	c1 := newSpace()
	c1n, _ := server.CopySendRight(c1, n)
	if err := c1.DeallocatePort(c1n); err != nil {
		t.Fatal(err)
	}
	// Notification queued; mint a new right before dispatching it.
	c2 := newSpace()
	c2n, _ := server.CopySendRight(c2, n)

	m, err := server.Receive(server.NotifyPort(), ipc.ReceiveOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Dispatch(m) {
		t.Fatal("notification not consumed")
	}
	if fired.Load() != 0 {
		t.Fatal("stale notification fired the callback")
	}
	// Drop the new right: the re-armed request fires for real.
	if err := c2.DeallocatePort(c2n); err != nil {
		t.Fatal(err)
	}
	m, err = server.Receive(server.NotifyPort(), ipc.ReceiveOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Dispatch(m) {
		t.Fatal("second notification not consumed")
	}
	if fired.Load() != 1 {
		t.Fatalf("callback ran %d times, want 1", fired.Load())
	}
}

// TestWatcherPortDeath: OnPortDeath dispatches a MsgIDPortDeleted for a
// right the space holds.
func TestWatcherPortDeath(t *testing.T) {
	owner := newSpace()
	holder := newSpace()
	w := New(holder)
	n, _ := owner.AllocatePort()
	hn, err := owner.CopySendRight(holder, n)
	if err != nil {
		t.Fatal(err)
	}
	var died atomic.Int32
	w.OnPortDeath(hn, func(ipc.Name) { died.Add(1) })
	if err := owner.DeallocatePort(n); err != nil {
		t.Fatal(err)
	}
	m, err := holder.Receive(holder.NotifyPort(), ipc.ReceiveOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Dispatch(m) || died.Load() != 1 {
		t.Fatalf("death dispatch: fired=%d", died.Load())
	}
	// Unregistered notifications are left for other consumers.
	if w.Dispatch(&ipc.Message{ID: ipc.MsgIDPortDeleted, LocalPort: holder.NotifyPort(), Sections: []ipc.Section{ipc.InlineBytes(ipc.EncodeName(12345))}}) {
		t.Fatal("consumed a notification with no registration")
	}
}

// TestWatcherIgnoresForgedNotifications: a message with a notification
// ID that did NOT arrive on the notify port (a client forging one at an
// ordinary service port) must neither consume the message nor burn a
// registration.
func TestWatcherIgnoresForgedNotifications(t *testing.T) {
	owner := newSpace()
	holder := newSpace()
	w := New(holder)
	n, _ := owner.AllocatePort()
	hn, err := owner.CopySendRight(holder, n)
	if err != nil {
		t.Fatal(err)
	}
	var died atomic.Int32
	w.OnPortDeath(hn, func(ipc.Name) { died.Add(1) })

	// Forged: right payload, wrong arrival port (a service port).
	svc, _ := holder.AllocatePort()
	forged := &ipc.Message{
		ID:        ipc.MsgIDPortDeleted,
		LocalPort: svc,
		Sections:  []ipc.Section{ipc.InlineBytes(ipc.EncodeName(hn))},
	}
	if w.Dispatch(forged) {
		t.Fatal("forged notification consumed")
	}
	if died.Load() != 0 {
		t.Fatal("forged notification ran the callback")
	}

	// The real death still reaches the (unburned) registration.
	if err := owner.DeallocatePort(n); err != nil {
		t.Fatal(err)
	}
	m, err := holder.Receive(holder.NotifyPort(), ipc.ReceiveOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Dispatch(m) || died.Load() != 1 {
		t.Fatalf("real death after forgery attempt: fired=%d", died.Load())
	}
}

// TestWatcherStop: Stop unblocks a Run loop promptly.
func TestWatcherStop(t *testing.T) {
	s := newSpace()
	w := New(s)
	done := make(chan struct{})
	go func() { w.Run(); close(done) }()
	time.Sleep(5 * time.Millisecond)
	w.Stop()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop")
	}
}
