package lifecycle

import (
	"sync/atomic"
	"testing"

	"repro/internal/ipc"
)

// TestWatcherOnDeadName: a Run-mode watcher fires the dead-name
// callback when the watched send right's port dies elsewhere.
func TestWatcherOnDeadName(t *testing.T) {
	client := newSpace()
	w := New(client)
	go w.Run()
	defer w.Stop()

	server := newSpace()
	defer server.Destroy()
	svc, err := server.AllocatePort()
	if err != nil {
		t.Fatal(err)
	}
	cn, err := server.CopySendRight(client, svc)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int32
	if err := w.OnDeadName(cn, func(got ipc.Name) {
		if got == cn {
			fired.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := server.DeallocatePort(svc); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dead-name callback", func() bool { return fired.Load() == 1 })
	// The name is a dead name the task still holds; cleaning it up is
	// the callback's job in real servers.
	if _, err := client.Resolve(cn); err != ipc.ErrDeadName {
		t.Fatalf("resolve: %v, want ErrDeadName", err)
	}
}

// TestWatcherOnDeadNameAlreadyDead: arming against an already dead name
// fails fast with ErrDeadName and removes the registration.
func TestWatcherOnDeadNameAlreadyDead(t *testing.T) {
	client := newSpace()
	defer client.Destroy()
	w := New(client)
	server := newSpace()
	defer server.Destroy()
	svc, _ := server.AllocatePort()
	cn, _ := server.CopySendRight(client, svc)
	_ = server.DeallocatePort(svc)
	if err := w.OnDeadName(cn, func(ipc.Name) {}); err != ipc.ErrDeadName {
		t.Fatalf("got %v, want ErrDeadName", err)
	}
	w.mu.Lock()
	_, registered := w.deadNames[cn]
	w.mu.Unlock()
	if registered {
		t.Fatal("failed arm left a registration behind")
	}
}

// TestWatcherDeadNameStaleSuppressed: the callback must NOT run when
// the task deallocated (and the allocator reused) the name while the
// notification was queued — the generation check fails and the message
// is consumed silently.
func TestWatcherDeadNameStaleSuppressed(t *testing.T) {
	client := newSpace()
	defer client.Destroy()
	w := New(client)

	server := newSpace()
	defer server.Destroy()
	svc, _ := server.AllocatePort()
	cn, _ := server.CopySendRight(client, svc)
	var fired atomic.Int32
	if err := w.OnDeadName(cn, func(ipc.Name) { fired.Add(1) }); err != nil {
		t.Fatal(err)
	}
	_ = server.DeallocatePort(svc)
	// The notification now sits queued. Deallocate the dead name before
	// dispatching it — the binding the registration was about is gone.
	if err := client.DeallocatePort(cn); err != nil {
		t.Fatal(err)
	}
	m, err := client.Receive(client.NotifyPort(), ipc.ReceiveOptions{NonBlocking: true})
	for err == nil {
		if m.ID == ipc.MsgIDDeadName {
			if !w.Dispatch(m) {
				t.Fatal("dead-name notification not consumed")
			}
		} else {
			w.Dispatch(m)
		}
		m, err = client.Receive(client.NotifyPort(), ipc.ReceiveOptions{NonBlocking: true})
	}
	if fired.Load() != 0 {
		t.Fatal("stale dead-name callback ran")
	}
}
