// Command machfs is an interactive shell over the §4.1 filesystem
// server: every read maps the file copy-on-write through the external
// pager, so the session demonstrates demand paging and the kernel's
// file cache live.
//
// Usage: machfs  (then type "help")
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro/mach"
)

func main() {
	k := mach.NewKernel(mach.Config{Frames: 1024, PageSize: 4096})
	defer k.Shutdown()
	disk := mach.NewDisk(4096, 4096, mach.DefaultDiskLatency, k.Clock())
	srv, err := mach.NewFSServer(k, disk)
	if err != nil {
		fmt.Fprintln(os.Stderr, "machfs:", err)
		os.Exit(1)
	}
	go srv.Run()
	defer srv.Stop()
	task := k.NewTask()
	svc, err := srv.Publish(task)
	if err != nil {
		fmt.Fprintln(os.Stderr, "machfs:", err)
		os.Exit(1)
	}

	fmt.Println("machfs — files are memory objects; type 'help'")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("machfs> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		fields := strings.SplitN(strings.TrimSpace(sc.Text()), " ", 3)
		switch fields[0] {
		case "":
		case "help":
			fmt.Println(`commands:
  create <name> <text>   store a file
  read <name>            map the file and print it (demand paged)
  append <name> <text>   read, modify the private copy, write back
  stat <name>            file size
  ls                     list files
  stats                  disk and vm counters
  quit`)
		case "create":
			if len(fields) < 3 {
				fmt.Println("usage: create <name> <text>")
				continue
			}
			if err := srv.CreateFile(fields[1], []byte(fields[2])); err != nil {
				fmt.Println("error:", err)
			}
		case "read":
			if len(fields) < 2 {
				fmt.Println("usage: read <name>")
				continue
			}
			addr, size, err := mach.FSReadFile(task, svc, fields[1])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			data, err := task.VMRead(addr, size)
			if err != nil {
				fmt.Println("fault error:", err)
			} else {
				fmt.Printf("%s\n", data)
			}
			_ = task.VMDeallocate(addr, mach.FSMappedSize(task, size))
		case "append":
			if len(fields) < 3 {
				fmt.Println("usage: append <name> <text>")
				continue
			}
			addr, size, err := mach.FSReadFile(task, svc, fields[1])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			old, _ := task.VMRead(addr, size)
			grown := append(old, []byte(fields[2])...)
			gaddr, _ := task.VMAllocate(0, uint64(len(grown)), true)
			_ = task.VMWrite(gaddr, grown)
			if err := mach.FSWriteFile(task, svc, fields[1], gaddr, uint64(len(grown))); err != nil {
				fmt.Println("write error:", err)
			}
			_ = task.VMDeallocate(addr, mach.FSMappedSize(task, size))
		case "stat":
			if len(fields) < 2 {
				fmt.Println("usage: stat <name>")
				continue
			}
			size, err := mach.FSStat(task, svc, fields[1])
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%d bytes\n", size)
			}
		case "ls":
			names, err := mach.FSList(task, svc)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, n := range names {
				fmt.Println(n)
			}
		case "stats":
			st := k.Statistics()
			fmt.Printf("disk: %+v\n", disk.Stats())
			fmt.Printf("vm: faults=%d pageins=%d zero-fills=%d cow=%d hits=%d/%d\n",
				st.Faults, st.Pageins, st.ZeroFills, st.CowFaults, st.Hits, st.Lookups)
			fmt.Printf("simulated time: %v\n", k.Clock().Now())
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command (try 'help')")
		}
	}
}
