// Command benchjson turns `go test -bench` output into the committed
// benchmark trajectory and gates CI on it.
//
// Two subcommands:
//
//	go test -bench . -benchmem ./... | benchjson emit -dir .
//	    Parses benchmark lines from stdin and writes the next
//	    BENCH_<n>.json in -dir (schema below). Prints the path.
//
//	benchjson diff [-dir .] [OLD.json NEW.json]
//	    Compares two trajectory points — by default the two
//	    highest-numbered BENCH_<n>.json files in -dir — and exits 1 if
//	    a pinned fast-path benchmark regressed: >15% ns/op (tunable
//	    with -max-regress) or ANY increase in allocs/op. Non-pinned
//	    benchmarks are reported but never gate.
//
// Schema (mach-bench/v1):
//
//	{
//	  "schema": "mach-bench/v1",
//	  "go_version": "go1.22.x",
//	  "gomaxprocs": 1,
//	  "benchmarks": [
//	    {"package": "repro", "name": "BenchmarkIPCSend",
//	     "iterations": 200000, "ns_per_op": 244.2, "bytes_per_op": 1,
//	     "allocs_per_op": 0, "msgs_per_sec": 0, "gomaxprocs": 1}, ...
//	  ]
//	}
//
// "name" has the harness's -<procs> suffix stripped; a benchmark's
// GOMAXPROCS lives in the "gomaxprocs" field instead (parsed from the
// suffix or from a "gomaxprocs=N" sub-benchmark component), so the same
// benchmark diffs cleanly across machines with different core counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark result — one line of `go test -bench` output.
type Bench struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MsgsPerSec  float64 `json:"msgs_per_sec,omitempty"`
	GoMaxProcs  int     `json:"gomaxprocs"`
}

// File is one trajectory point: every benchmark from one `make bench`.
type File struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Benchmarks []Bench `json:"benchmarks"`
}

const schemaID = "mach-bench/v1"

// pinned names the fast-path benchmarks whose latency and allocation
// counts gate CI. Keys are "package/name" after suffix stripping.
var pinned = []string{
	"repro/BenchmarkIPCSend",
	"repro/BenchmarkIPCReceive",
	"repro/internal/rpc/BenchmarkRPCRoundTrip/pooled-reply-port",
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "emit":
		runEmit(os.Args[2:])
	case "diff":
		runDiff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchjson emit -dir DIR  (bench output on stdin)")
	fmt.Fprintln(os.Stderr, "       benchjson diff [-dir DIR] [OLD.json NEW.json]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// --- emit -------------------------------------------------------------------

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)
var procsSuffix = regexp.MustCompile(`-(\d+)$`)
var procsComponent = regexp.MustCompile(`(?:^|/)gomaxprocs=(\d+)(?:/|$)`)

func runEmit(argv []string) {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_<n>.json files")
	_ = fs.Parse(argv)
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}

	out := File{Schema: schemaID, GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so logs keep the raw output
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b, err := parseBench(pkg, m, out.GoMaxProcs)
		if err != nil {
			fatal(fmt.Errorf("parsing %q: %w", line, err))
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(out.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	n := nextIndex(*dir)
	path := filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", n))
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", path, len(out.Benchmarks))
}

func parseBench(pkg string, m []string, defaultProcs int) (Bench, error) {
	name := m[1]
	procs := defaultProcs
	if sm := procsSuffix.FindStringSubmatch(name); sm != nil {
		procs, _ = strconv.Atoi(sm[1])
		name = name[:len(name)-len(sm[0])]
	}
	if sm := procsComponent.FindStringSubmatch(name); sm != nil {
		procs, _ = strconv.Atoi(sm[1])
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Bench{}, err
	}
	b := Bench{Package: pkg, Name: name, Iterations: iters, GoMaxProcs: procs}
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "msgs/s":
			b.MsgsPerSec = v
		}
	}
	return b, nil
}

// --- trajectory files -------------------------------------------------------

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// indices returns the sorted BENCH_<n>.json indices present in dir.
func indices(dir string) []int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		fatal(err)
	}
	var ns []int
	for _, e := range ents {
		if m := benchFile.FindStringSubmatch(e.Name()); m != nil {
			n, _ := strconv.Atoi(m[1])
			ns = append(ns, n)
		}
	}
	sort.Ints(ns)
	return ns
}

func nextIndex(dir string) int {
	ns := indices(dir)
	if len(ns) == 0 {
		return 1
	}
	return ns[len(ns)-1] + 1
}

func load(path string) File {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if f.Schema != schemaID {
		fatal(fmt.Errorf("%s: schema %q, want %q", path, f.Schema, schemaID))
	}
	return f
}

// --- diff -------------------------------------------------------------------

func runDiff(argv []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_<n>.json files")
	maxRegress := fs.Float64("max-regress", 0.15, "max fractional ns/op regression on pinned benchmarks")
	_ = fs.Parse(argv)

	var oldPath, newPath string
	switch fs.NArg() {
	case 2:
		oldPath, newPath = fs.Arg(0), fs.Arg(1)
	case 0:
		ns := indices(*dir)
		if len(ns) < 2 {
			fmt.Println("benchjson: fewer than two trajectory points; nothing to diff")
			return
		}
		oldPath = filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", ns[len(ns)-2]))
		newPath = filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", ns[len(ns)-1]))
	default:
		usage()
	}
	oldF, newF := load(oldPath), load(newPath)
	oldBy := index(oldF)
	newBy := index(newF)
	fmt.Printf("benchjson: %s -> %s\n", oldPath, newPath)

	failures := 0
	isPinned := map[string]bool{}
	for _, p := range pinned {
		isPinned[p] = true
	}
	// Pinned gates first: missing, slower, or allocating more all fail.
	for _, key := range pinned {
		o, okO := oldBy[key]
		n, okN := newBy[key]
		switch {
		case !okN:
			fmt.Printf("FAIL %-60s missing from new trajectory\n", key)
			failures++
		case !okO:
			fmt.Printf("new  %-60s %.0f ns/op %.0f allocs/op (no baseline)\n", key, n.NsPerOp, n.AllocsPerOp)
		default:
			delta := 0.0
			if o.NsPerOp > 0 {
				delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
			}
			switch {
			case n.AllocsPerOp > o.AllocsPerOp:
				fmt.Printf("FAIL %-60s allocs/op %.0f -> %.0f (any increase fails)\n",
					key, o.AllocsPerOp, n.AllocsPerOp)
				failures++
			case delta > *maxRegress:
				fmt.Printf("FAIL %-60s ns/op %.0f -> %.0f (%+.1f%%, limit %+.0f%%)\n",
					key, o.NsPerOp, n.NsPerOp, 100*delta, 100**maxRegress)
				failures++
			default:
				fmt.Printf("ok   %-60s ns/op %.0f -> %.0f (%+.1f%%), allocs/op %.0f -> %.0f\n",
					key, o.NsPerOp, n.NsPerOp, 100*delta, o.AllocsPerOp, n.AllocsPerOp)
			}
		}
	}
	// Everything else is informational: print notable moves only.
	var keys []string
	for k := range newBy {
		if !isPinned[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		o, ok := oldBy[k]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		n := newBy[k]
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		if delta > *maxRegress || delta < -*maxRegress {
			fmt.Printf("note %-60s ns/op %.0f -> %.0f (%+.1f%%)\n", k, o.NsPerOp, n.NsPerOp, 100*delta)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d pinned benchmark(s) regressed\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchjson: pinned fast paths within budget")
}

// index keys a file's benchmarks by package/name. The multicore sweep
// repeats a name at several GOMAXPROCS values; keep the 1-proc point so
// pins stay machine-independent, and last-write-wins otherwise.
func index(f File) map[string]Bench {
	by := map[string]Bench{}
	for _, b := range f.Benchmarks {
		key := b.Package + "/" + b.Name
		if prev, ok := by[key]; ok && prev.GoMaxProcs == 1 && b.GoMaxProcs != 1 {
			continue
		}
		by[key] = b
	}
	return by
}
