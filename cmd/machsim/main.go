// Command machsim runs parameterized multi-host scenarios on the
// simulator: a configurable architecture, host count, and one of four
// workloads. It is the knob-turning companion to the fixed tables of
// machbench.
//
// Usage:
//
//	machsim -scenario sharedmem -arch NORMA -hosts 4 -ops 500 -locality 0.8
//	machsim -scenario migration -arch NORMA -pages 512 -touch 0.1 -prepage
//	machsim -scenario pressure  -frames 64 -pages 256
//	machsim -scenario camelot   -ops 50 -pages 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/mach"
)

var (
	scenario = flag.String("scenario", "sharedmem", "sharedmem | migration | pressure | camelot")
	archFlag = flag.String("arch", "NORMA", "UMA | NUMA | NORMA")
	hosts    = flag.Int("hosts", 4, "number of hosts (sharedmem)")
	ops      = flag.Int("ops", 500, "operations per client (sharedmem)")
	locality = flag.Float64("locality", 0.8, "probability of touching own pages (sharedmem)")
	writePct = flag.Float64("writes", 0.3, "fraction of operations that write (sharedmem)")
	pages    = flag.Int("pages", 512, "task/region size in pages")
	touch    = flag.Float64("touch", 0.1, "fraction of pages the workload touches (migration)")
	prepage  = flag.Bool("prepage", false, "pre-page instead of demand paging (migration)")
	frames   = flag.Int("frames", 256, "physical frames per host")
)

const pageSize = 4096

func archOf(s string) mach.Arch {
	switch strings.ToUpper(s) {
	case "UMA":
		return mach.UMA
	case "NUMA":
		return mach.NUMA
	case "NORMA":
		return mach.NORMA
	default:
		fmt.Fprintf(os.Stderr, "machsim: unknown arch %q\n", s)
		os.Exit(1)
		return 0
	}
}

func main() {
	flag.Parse()
	switch *scenario {
	case "sharedmem":
		runSharedMem()
	case "migration":
		runMigration()
	case "pressure":
		runPressure()
	case "camelot":
		runCamelot()
	default:
		fmt.Fprintf(os.Stderr, "machsim: unknown scenario %q\n", *scenario)
		os.Exit(1)
	}
}

// runSharedMem drives clients on every host against one shared region.
func runSharedMem() {
	kernels, topo, clock := mach.Complex(*hosts, archOf(*archFlag), *frames, pageSize)
	defer func() {
		for _, k := range kernels {
			k.Shutdown()
		}
	}()
	srv, err := mach.NewSharedMemoryServer(kernels[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "machsim:", err)
		os.Exit(1)
	}
	go srv.Run()
	defer srv.Stop()

	pagesEach := *pages / *hosts
	if pagesEach < 1 {
		pagesEach = 1
	}
	region := *hosts * pagesEach * pageSize
	if err := srv.CreateRegion("r", uint64(region)); err != nil {
		fmt.Fprintln(os.Stderr, "machsim:", err)
		os.Exit(1)
	}
	tasks := make([]*mach.Task, *hosts)
	addrs := make([]uint64, *hosts)
	for i := range tasks {
		tasks[i] = kernels[i].NewTask()
		svc, err := srv.Publish(tasks[i])
		if err != nil {
			fmt.Fprintln(os.Stderr, "machsim:", err)
			os.Exit(1)
		}
		addrs[i], _, err = mach.SharedAttach(tasks[i], svc, "r")
		if err != nil {
			fmt.Fprintln(os.Stderr, "machsim:", err)
			os.Exit(1)
		}
	}
	start := clock.Now()
	var wg sync.WaitGroup
	for c := range tasks {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := uint64(c + 1)
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int((rng >> 17) % uint64(n))
			}
			buf := []byte{byte(c + 1)}
			for op := 0; op < *ops; op++ {
				var page int
				if float64(next(1000))/1000 < *locality {
					page = c*pagesEach + next(pagesEach)
				} else {
					page = next(*hosts * pagesEach)
				}
				off := addrs[c] + uint64(page*pageSize) + uint64(next(pageSize-1))
				if float64(next(1000))/1000 < *writePct {
					_ = tasks[c].VMWrite(off, buf)
				} else {
					_, _ = tasks[c].VMRead(off, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := clock.Now() - start
	st := srv.Stats()
	total := *hosts * *ops
	fmt.Printf("sharedmem: %d hosts (%s), %d ops, locality %.2f\n", *hosts, *archFlag, total, *locality)
	fmt.Printf("  read-serves=%d write-grants=%d invalidations=%d write-backs=%d\n",
		st.ReadServes, st.WriteGrants, st.Invalidations, st.WriteBacks)
	fmt.Printf("  network=%+v\n", topo.Stats())
	fmt.Printf("  simulated: total=%v per-op=%v\n", elapsed, elapsed/time.Duration(total))
}

// runMigration migrates a task and runs a sparse workload on it.
func runMigration() {
	kernels, topo, clock := mach.Complex(2, archOf(*archFlag), *frames*8, pageSize)
	src, dst := kernels[0], kernels[1]
	defer src.Shutdown()
	defer dst.Shutdown()
	task := src.NewTask()
	addr, _ := task.VMAllocate(0, uint64(*pages*pageSize), true)
	page := make([]byte, pageSize)
	for i := 0; i < *pages; i++ {
		page[0] = byte(i)
		_ = task.VMWrite(addr+uint64(i*pageSize), page)
	}
	topo.ResetStats()
	start := clock.Now()
	migrated, mig, err := mach.Migrate(task, dst, mach.MigrationOptions{PrePage: *prepage})
	if err != nil {
		fmt.Fprintln(os.Stderr, "machsim:", err)
		os.Exit(1)
	}
	defer mig.Stop()
	if *prepage {
		for mig.Stats().PagesPrePaged < int64(*pages) {
			time.Sleep(100 * time.Microsecond)
		}
	}
	limit := int(float64(*pages) * *touch)
	for i := 0; i < limit; i++ {
		_, _ = migrated.VMRead(addr+uint64(i*pageSize), 1)
	}
	elapsed := clock.Now() - start
	st := mig.Stats()
	fmt.Printf("migration: %d pages, touch %.0f%%, prepage=%v (%s)\n",
		*pages, *touch*100, *prepage, *archFlag)
	fmt.Printf("  moved: %d demand + %d pre-paged; network %d KiB\n",
		st.PagesRequested, st.PagesPrePaged, topo.Stats().RemoteBytes/1024)
	fmt.Printf("  simulated: %v\n", elapsed)
}

// runCamelot runs a transaction batch over recoverable memory, crashes,
// recovers, and verifies failure atomicity.
func runCamelot() {
	k := mach.NewKernel(mach.Config{Frames: *frames, PageSize: pageSize})
	defer k.Shutdown()
	dataDisk := mach.NewDisk(4096, pageSize, mach.DefaultDiskLatency, k.Clock())
	logDisk := mach.NewDisk(16384, pageSize, mach.DefaultDiskLatency, k.Clock())
	dm, err := mach.NewCamelotDiskManager(k, dataDisk, logDisk)
	if err != nil {
		fmt.Fprintln(os.Stderr, "machsim:", err)
		os.Exit(1)
	}
	go dm.Run()
	defer dm.Stop()
	app := k.NewTask()
	svc, _ := dm.Publish(app)
	client := mach.CamelotOpen(app, svc)
	segPages := *pages
	if segPages > dataDisk.Blocks() {
		segPages = dataDisk.Blocks() / 2
	}
	if err := client.CreateSegment("seg", uint64(segPages)*pageSize); err != nil {
		fmt.Fprintln(os.Stderr, "machsim:", err)
		os.Exit(1)
	}
	seg, err := client.Attach("seg")
	if err != nil {
		fmt.Fprintln(os.Stderr, "machsim:", err)
		os.Exit(1)
	}
	start := k.Clock().Now()
	commits, aborts := 0, 0
	for i := 0; i < *ops; i++ {
		tx := client.Begin()
		off := uint64((i * 64) % (segPages*pageSize - 8))
		if err := tx.Write(seg, off, []byte{byte(i + 1)}); err != nil {
			fmt.Fprintln(os.Stderr, "machsim:", err)
			os.Exit(1)
		}
		if i%3 == 2 {
			_ = tx.Abort()
			aborts++
		} else {
			_ = tx.Commit()
			commits++
		}
	}
	elapsed := k.Clock().Now() - start
	dm.Crash()
	replayed := dm.Recover()
	st := dm.Stats()
	fmt.Printf("camelot: %d txs (%d commit, %d abort) over %d pages\n", *ops, commits, aborts, segPages)
	fmt.Printf("  log-records=%d log-forces=%d wal-forces=%d page-writes=%d\n",
		st.LogRecords, st.LogForces, st.WALForces, st.PageWrites)
	fmt.Printf("  crash + recovery replayed %d updates; simulated %v\n", replayed, elapsed)
}

// runPressure overcommits one kernel and reports pageout behaviour.
func runPressure() {
	k := mach.NewKernel(mach.Config{Frames: *frames, PageSize: pageSize})
	defer k.Shutdown()
	task := k.NewTask()
	start := k.Clock().Now()
	addr, _ := task.VMAllocate(0, uint64(*pages*pageSize), true)
	page := make([]byte, pageSize)
	for i := 0; i < *pages; i++ {
		page[0] = byte(i)
		_ = task.VMWrite(addr+uint64(i*pageSize), page)
	}
	for i := 0; i < *pages; i++ {
		b, _ := task.VMRead(addr+uint64(i*pageSize), 1)
		if len(b) != 1 || b[0] != byte(i) {
			fmt.Fprintf(os.Stderr, "machsim: data lost at page %d\n", i)
			os.Exit(1)
		}
	}
	elapsed := k.Clock().Now() - start
	st := k.Statistics()
	fmt.Printf("pressure: %d pages through %d frames\n", *pages, *frames)
	fmt.Printf("  faults=%d pageins=%d pageouts=%d reactivations=%d\n",
		st.Faults, st.Pageins, st.Pageouts, st.Reactivations)
	fmt.Printf("  default pager holds %d pages; simulated %v\n",
		k.DefaultPager().BackingPages(), elapsed)
}
