// machbench mcore: the multicore throughput sweep, standalone.
//
// Reruns the contended IPC shapes from the root benchmark suite
// (send, fan-in, RPC, port-set) across a GOMAXPROCS ladder and prints
// msgs/sec per point, so scaling can be eyeballed without the testing
// harness. With -profile DIR it also captures per-workload pprof
// profiles: cpu (where the time goes), allocs (what escapes to the
// heap), mutex and block (which lock or wait point serializes the
// shape).
//
// Usage:
//
//	machbench mcore                     # sweep 1,2,4,8 procs
//	machbench mcore -procs 1,4 -n 20000
//	machbench mcore -profile /tmp/prof  # + cpu/allocs/mutex/block profiles
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/mach"
)

const mcoreEcho mach.MsgID = 9500

// mcoreWorkload runs msgs messages spread over procs goroutines and
// reports how many were moved (normally msgs; short on error).
type mcoreWorkload struct {
	name string
	doc  string
	run  func(procs, msgs int) (int, error)
}

var mcoreWorkloads = []mcoreWorkload{
	{"send", "N senders -> N ports, one receiver task", mcoreSend},
	{"fanin", "N senders -> one port, one receiver", mcoreFanIn},
	{"rpc", "N clients -> echo service, N workers", mcoreRPC},
	{"portset", "N clients -> 3 services, one port-set loop", mcorePortSet},
}

func runMcore(argv []string) {
	fs := flag.NewFlagSet("mcore", flag.ExitOnError)
	procsFlag := fs.String("procs", "1,2,4,8", "comma-separated GOMAXPROCS ladder")
	msgs := fs.Int("n", 50000, "messages per sweep point")
	profileDir := fs.String("profile", "", "write cpu/allocs/mutex/block profiles into this directory")
	_ = fs.Parse(argv)

	var ladder []int
	for _, f := range strings.Split(*procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "machbench mcore: bad -procs entry %q\n", f)
			os.Exit(1)
		}
		ladder = append(ladder, p)
	}
	if *profileDir != "" {
		if err := os.MkdirAll(*profileDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "machbench mcore: %v\n", err)
			os.Exit(1)
		}
		// Sample every contended mutex event and every blocking event
		// over ~1us; the sweep is short, so full sampling is affordable.
		runtime.SetMutexProfileFraction(1)
		runtime.SetBlockProfileRate(1000)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	fmt.Printf("machbench mcore: %d msgs/point, ladder %v (host has %d CPUs)\n\n",
		*msgs, ladder, runtime.NumCPU())
	fmt.Printf("%-8s %-10s %12s %12s\n", "workload", "procs", "msgs/s", "ns/msg")
	for _, w := range mcoreWorkloads {
		if *profileDir != "" {
			// One CPU profile per workload, covering its whole ladder.
			f, err := os.Create(filepath.Join(*profileDir, w.name+".cpu.pprof"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "machbench mcore: %v\n", err)
				os.Exit(1)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "machbench mcore: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
		}
		for _, procs := range ladder {
			runtime.GOMAXPROCS(procs)
			start := time.Now()
			moved, err := w.run(procs, *msgs)
			elapsed := time.Since(start)
			if err != nil {
				fmt.Fprintf(os.Stderr, "machbench mcore: %s/procs=%d: %v\n", w.name, procs, err)
				os.Exit(1)
			}
			rate := float64(moved) / elapsed.Seconds()
			fmt.Printf("%-8s %-10d %12.0f %12.0f\n",
				w.name, procs, rate, float64(elapsed.Nanoseconds())/float64(moved))
		}
		if *profileDir != "" {
			pprof.StopCPUProfile()
			fmt.Printf("  wrote %s\n", filepath.Join(*profileDir, w.name+".cpu.pprof"))
			writeProfile(*profileDir, w.name, "allocs")
			writeProfile(*profileDir, w.name, "mutex")
			writeProfile(*profileDir, w.name, "block")
		}
	}
}

func writeProfile(dir, workload, kind string) {
	p := pprof.Lookup(kind)
	if p == nil {
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("%s.%s.pprof", workload, kind))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "machbench mcore: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := p.WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "machbench mcore: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s\n", path)
}

// mcoreSend: procs senders each flood a private port; one receiver task
// drains all of them. Exercises space-shard and per-port lock scaling.
func mcoreSend(procs, msgs int) (int, error) {
	k := mach.NewKernel(mach.Config{Frames: 256, PageSize: 4096})
	var drainers sync.WaitGroup
	// LIFO: Shutdown kills the ports, which unblocks the drainers Wait
	// then joins.
	defer drainers.Wait()
	defer k.Shutdown()
	receiver := k.NewTask()
	sender := k.NewTask()
	per := msgs / procs
	if per == 0 {
		per = 1
	}
	names := make([]mach.Name, procs)
	for i := range names {
		svc, err := receiver.Space.AllocatePort()
		if err != nil {
			return 0, err
		}
		_ = receiver.Space.SetBacklog(svc, 1024)
		if names[i], err = receiver.Space.CopySendRight(sender.Space, svc); err != nil {
			return 0, err
		}
		drainers.Add(1)
		go func(svc mach.Name) {
			defer drainers.Done()
			for {
				m, err := receiver.Receive(svc, mach.ReceiveOptions{})
				if err != nil {
					return
				}
				m.Release()
			}
		}(svc)
	}
	errc := make(chan error, procs)
	for i := 0; i < procs; i++ {
		go func(n mach.Name) {
			for j := 0; j < per; j++ {
				m := mach.GetMessage()
				m.ID = 1
				m.RemotePort = n
				if err := sender.Send(m, mach.SendOptions{}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(names[i])
	}
	for i := 0; i < procs; i++ {
		if err := <-errc; err != nil {
			return 0, err
		}
	}
	return per * procs, nil
}

// mcoreFanIn: procs senders converge on one port; the caller drains.
func mcoreFanIn(procs, msgs int) (int, error) {
	k := mach.NewKernel(mach.Config{Frames: 256, PageSize: 4096})
	defer k.Shutdown()
	receiver := k.NewTask()
	sender := k.NewTask()
	svc, err := receiver.Space.AllocatePort()
	if err != nil {
		return 0, err
	}
	_ = receiver.Space.SetBacklog(svc, 1024)
	name, err := receiver.Space.CopySendRight(sender.Space, svc)
	if err != nil {
		return 0, err
	}
	per := msgs / procs
	if per == 0 {
		per = 1
	}
	total := per * procs
	errc := make(chan error, procs)
	for i := 0; i < procs; i++ {
		go func() {
			for j := 0; j < per; j++ {
				m := mach.GetMessage()
				m.ID = 1
				m.RemotePort = name
				if err := sender.Send(m, mach.SendOptions{}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for i := 0; i < total; i++ {
		m, err := receiver.Receive(svc, mach.ReceiveOptions{Timeout: 30 * time.Second})
		if err != nil {
			return 0, err
		}
		m.Release()
	}
	for i := 0; i < procs; i++ {
		if err := <-errc; err != nil {
			return 0, err
		}
	}
	return total, nil
}

// mcoreRPC: procs clients call one echo service backed by procs workers.
func mcoreRPC(procs, msgs int) (int, error) {
	k := mach.NewKernel(mach.Config{Frames: 256, PageSize: 4096})
	defer k.Shutdown()
	server := k.NewTask()
	srv, err := mach.NewRPCServer(server.Space, mach.WithRPCWorkers(procs))
	if err != nil {
		return 0, err
	}
	srv.Handle(mcoreEcho, mcoreEchoHandler)
	go srv.Run()
	defer srv.Stop()
	return mcoreCallers(k, server, []*mach.RPCServer{srv}, procs, msgs)
}

// mcorePortSet: procs clients spread over three services demuxed by one
// port-set receive loop.
func mcorePortSet(procs, msgs int) (int, error) {
	k := mach.NewKernel(mach.Config{Frames: 256, PageSize: 4096})
	defer k.Shutdown()
	server := k.NewTask()
	srvs := make([]*mach.RPCServer, 3)
	for i := range srvs {
		srv, err := mach.NewRPCServer(server.Space)
		if err != nil {
			return 0, err
		}
		srv.Handle(mcoreEcho, mcoreEchoHandler)
		srvs[i] = srv
	}
	go srvs[0].ServePorts(srvs[1], srvs[2])
	defer func() {
		for _, srv := range srvs {
			srv.Stop()
		}
	}()
	return mcoreCallers(k, server, srvs, procs, msgs)
}

func mcoreEchoHandler(m *mach.Message, d *mach.Dec) (*mach.RPCReply, error) {
	v := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	r := mach.NewRPCReply()
	r.U64(v)
	return r, nil
}

// mcoreCallers drives per-client pooled call loops round-robined over
// the given services and waits for all of them.
func mcoreCallers(k *mach.Kernel, server *mach.Task, srvs []*mach.RPCServer, procs, msgs int) (int, error) {
	per := msgs / procs
	if per == 0 {
		per = 1
	}
	errc := make(chan error, procs)
	for c := 0; c < procs; c++ {
		go func(c int) {
			task := k.NewTask()
			svc, err := server.Space.CopySendRight(task.Space, srvs[c%len(srvs)].Port)
			if err != nil {
				errc <- err
				return
			}
			client := mach.NewRPCClient(task.Space, svc, 30*time.Second)
			req := mach.NewEnc()
			for j := 0; j < per; j++ {
				resp, err := client.Call(mcoreEcho, req.Reset().U64(uint64(j)))
				if err != nil {
					errc <- err
					return
				}
				if resp.Dec.U64() != uint64(j) {
					resp.Release()
					errc <- fmt.Errorf("wrong echo")
					return
				}
				resp.Release()
			}
			errc <- nil
		}(c)
	}
	for i := 0; i < procs; i++ {
		if err := <-errc; err != nil {
			return 0, err
		}
	}
	return per * procs, nil
}
