// Command machbench regenerates every experiment table of the
// reproduction (DESIGN.md §5, recorded against the paper in
// EXPERIMENTS.md).
//
// Usage:
//
//	machbench            # run all experiments
//	machbench E3 E5      # run selected experiments
//	machbench -list      # list experiment IDs
//	machbench mcore ...  # multicore IPC throughput sweep (see mcore.go)
//	machbench stats ...  # metrics snapshot + diff + traced RPC (see stats.go)
//	machbench top ...    # live per-host msgs/s, p99, proxies (see stats.go)
//
// All quantities are simulated (deterministic virtual clock), so output
// is stable across machines; only the shapes are meaningful. The mcore
// subcommand is the exception: it measures real wall-clock throughput.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

var all = []struct {
	id  string
	fn  func() experiments.Table
	doc string
}{
	{"E2", experiments.E2MessageCopyVsCOW, "large message transfer: eager copy vs COW"},
	{"E3", experiments.E3UnixCacheVsMach, "buffer-cache UNIX vs Mach mapped files"},
	{"E4", experiments.E4ArchLatency, "UMA/NUMA/NORMA latency taxonomy"},
	{"E5", experiments.E5SharedMemoryLocality, "network shared memory vs locality"},
	{"E6", experiments.E6Migration, "copy-on-reference task migration"},
	{"E7", experiments.E7CamelotWAL, "Camelot recoverable VM / write-ahead log"},
	{"E8", experiments.E8FaultPath, "fault path costs and memory-failure policies"},
	{"E9", experiments.E9Ablations, "ablations: COW fork, copy-on-reference OOL, pageout target"},
	{"E10", experiments.E10NetmsgCrossHost, "cross-host RPC: direct vs netmsg proxy relay"},
	{"E11", experiments.E11DurableIO, "durable storage: frame pool over real files, group-committed WAL"},
	{"E12", experiments.E12ScaleOut, "scale-out registry: 16-64 hosts under open-loop load (E12_SCALE=small|smoke shrinks it)"},
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "mcore":
			runMcore(os.Args[2:])
			return
		case "stats":
			runStats(os.Args[2:])
			return
		case "top":
			runTop(os.Args[2:])
			return
		}
	}
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()
	if *list {
		for _, e := range all {
			fmt.Printf("%s  %s\n", e.id, e.doc)
		}
		return
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		t := e.fn()
		t.Render(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "machbench: no matching experiments (try -list)")
		os.Exit(1)
	}
}
