// machbench stats / machbench top: the observability surface, live.
//
// Both subcommands boot a small self-contained workload — a two-host
// NORMA complex with a local client and a remote client hammering one
// echo service through the netmsg relay (calls and batches) — and then
// read the process-global metrics registry the kernels record into.
//
//	machbench stats              # snapshot + diff-over-interval table
//	machbench stats -interval 2s
//	machbench stats -notrace     # skip the traced-RPC timeline
//	machbench top                # live per-host msgs/s, p99, proxies
//	machbench top -interval 500ms -n 0   # refresh forever
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/mach"
)

const statsEcho mach.MsgID = 9600

// statsWorkload is the traffic generator behind stats/top: two kernels,
// one echo service checked in on host 0, clients on both hosts.
type statsWorkload struct {
	kernels []*mach.Kernel
	client  *mach.RPCClient // remote client, reused for the traced call
	stop    chan struct{}
	wg      sync.WaitGroup
}

func startStatsWorkload() (*statsWorkload, error) {
	kernels, _, _ := mach.Complex(2, mach.NORMA, 256, 4096)
	w := &statsWorkload{kernels: kernels, stop: make(chan struct{})}

	server := kernels[0].NewTask()
	srv, err := mach.NewRPCServer(server.Space, mach.WithRPCWorkers(2))
	if err != nil {
		return nil, err
	}
	srv.Handle(statsEcho, func(m *mach.Message, d *mach.Dec) (*mach.RPCReply, error) {
		v := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		r := mach.NewRPCReply()
		r.U64(v)
		return r, nil
	})
	go srv.Run()
	if err := mach.NetMsgCheckIn(server, "echo", srv.Port); err != nil {
		return nil, err
	}

	// One caller per host: host 0 exercises the local fast path, host 1
	// the proxy relay. The remote caller folds a batch in every eighth
	// round so the batch-size histogram has something to show.
	for h, k := range kernels {
		task := k.NewTask()
		svc, err := mach.NetMsgLookUp(task, "echo")
		if err != nil {
			return nil, err
		}
		c := mach.NewRPCClient(task.Space, svc, 30*time.Second)
		if h == 1 {
			w.client = c
		}
		batching := h == 1
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			req := mach.NewEnc()
			for i := uint64(0); ; i++ {
				select {
				case <-w.stop:
					return
				default:
				}
				if batching && i%8 == 7 {
					b := c.NewBatch()
					for j := 0; j < 4; j++ {
						b.Add(statsEcho, mach.NewEnc().U64(i))
					}
					if b.Commit() != nil {
						return
					}
					continue
				}
				resp, err := c.Call(statsEcho, req.Reset().U64(i))
				if err != nil {
					return
				}
				resp.Release()
			}
		}()
	}
	return w, nil
}

// pause stops the traffic loops but leaves the complex up (the traced
// demo call wants a quiet wire).
func (w *statsWorkload) pause() {
	close(w.stop)
	w.wg.Wait()
}

func (w *statsWorkload) shutdown() {
	for i := len(w.kernels) - 1; i >= 0; i-- {
		w.kernels[i].Shutdown()
	}
}

func runStats(argv []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "diff window")
	notrace := fs.Bool("notrace", false, "skip the traced-RPC timeline")
	_ = fs.Parse(argv)

	w, err := startStatsWorkload()
	if err != nil {
		fmt.Fprintf(os.Stderr, "machbench stats: %v\n", err)
		os.Exit(1)
	}
	time.Sleep(100 * time.Millisecond) // warm-up: proxies built, pools primed

	before := mach.Metrics()
	time.Sleep(*interval)
	after := mach.Metrics()
	w.pause()

	fmt.Printf("activity over %v (two-host NORMA complex, echo service on host 0):\n\n",
		after.Interval(before).Round(time.Millisecond))
	fmt.Println(indent(after.Diff(before).Table()))
	fmt.Println("cumulative snapshot:")
	fmt.Println()
	fmt.Println(indent(after.Table()))

	if !*notrace {
		mach.ResetTrace()
		prev := mach.SetTraceSampling(1)
		resp, err := w.client.Call(statsEcho, mach.NewEnc().U64(42))
		mach.SetTraceSampling(prev)
		if err != nil {
			fmt.Fprintf(os.Stderr, "machbench stats: traced call: %v\n", err)
			os.Exit(1)
		}
		resp.Release()
		ids := map[uint64]bool{}
		for _, ev := range mach.TraceDump() {
			ids[ev.Trace] = true
		}
		fmt.Printf("traced cross-host RPC (%d trace(s) recorded):\n\n", len(ids))
		for _, ev := range mach.TraceDump() {
			if ids[ev.Trace] {
				fmt.Println(indent(mach.FormatTrace(mach.Trace(ev.Trace))))
				break
			}
		}
	}
	w.shutdown()
}

func runTop(argv []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "refresh interval")
	ticks := fs.Int("n", 10, "refresh count (0 = forever)")
	_ = fs.Parse(argv)

	w, err := startStatsWorkload()
	if err != nil {
		fmt.Fprintf(os.Stderr, "machbench top: %v\n", err)
		os.Exit(1)
	}
	defer w.shutdown()
	defer w.pause()

	prev := mach.Metrics()
	for i := 0; *ticks == 0 || i < *ticks; i++ {
		time.Sleep(*interval)
		cur := mach.Metrics()
		diff := cur.Diff(prev)
		secs := cur.Interval(prev).Seconds()
		fmt.Printf("\x1b[2J\x1b[Hmachbench top — %s (tick %d, interval %v)\n\n",
			time.Now().Format("15:04:05"), i+1, interval.Round(time.Millisecond))
		fmt.Printf("%-8s %10s %10s %12s %10s %8s\n",
			"host", "msgs/s", "rpc/s", "p99-us", "batches/s", "proxies")
		for _, host := range topHosts(cur) {
			p := host + "."
			sends := float64(diff.Counters[p+"ipc.sends"]) / secs
			calls := float64(0)
			for name, v := range diff.Counters {
				if strings.HasPrefix(name, p+"rpc.") && strings.HasSuffix(name, ".calls") {
					calls += float64(v)
				}
			}
			lat := diff.Hists[p+"ipc.latency_ns"]
			p99 := float64(lat.P99()) / 1e3
			batches := float64(diff.Hists[p+"rpc.batch_size"].Count) / secs
			fmt.Printf("%-8s %10.0f %10.0f %12.1f %10.1f %8d\n",
				host, sends, calls/secs, p99, batches, cur.Gauges[p+"netmsg.proxies"])
		}
		prev = cur
	}
}

// topHosts lists the hostN prefixes present in a snapshot, in order.
func topHosts(s mach.MetricsSnapshot) []string {
	seen := map[string]bool{}
	for name := range s.Counters {
		if h, _, ok := strings.Cut(name, "."); ok && strings.HasPrefix(h, "host") {
			seen[h] = true
		}
	}
	hosts := make([]string, 0, len(seen))
	for h := range seen {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ")
}
