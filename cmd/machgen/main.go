// Command machgen turns the interface definitions in
// repro/internal/idl/defs into wire code: request IDs, payload
// codecs, typed clients with batch stubs, and server demux tables.
// One zz_generated_machgen.go is written per interface directory,
// only when its content changes, so `go generate ./...` is a no-op on
// a clean tree (CI enforces this).
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/idl/defs"
)

const outName = "zz_generated_machgen.go"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "machgen:", err)
		os.Exit(1)
	}
}

func run() error {
	root, err := findRoot()
	if err != nil {
		return err
	}
	for _, iface := range defs.All {
		src, err := Generate(iface)
		if err != nil {
			return err
		}
		path := filepath.Join(root, filepath.FromSlash(iface.Dir), outName)
		if old, err := os.ReadFile(path); err == nil && string(old) == string(src) {
			continue
		}
		if err := os.WriteFile(path, src, 0o644); err != nil {
			return err
		}
		fmt.Printf("machgen: wrote %s\n", filepath.Join(iface.Dir, outName))
	}
	return nil
}

// findRoot walks up from the working directory to the module root.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
