package main

import (
	"fmt"
	"go/format"
	"reflect"
	"strings"

	"repro/internal/idl"
)

// fieldKind is the wire mapping of one struct field (see the package
// comment of internal/idl for the full mapping table).
type fieldKind int

const (
	kU8 fieldKind = iota
	kU16
	kU32
	kU64
	kName
	kStatus
	kString
	kBytes
	kTail
	kRegion
	kRight
	kStringList
	kStructList
)

// aliasing reports whether a decoded field of this kind shares storage
// with the message buffer — such replies must not be released back to
// the pool by the generated stub.
func (k fieldKind) aliasing() bool { return k == kBytes || k == kTail }

// section reports whether the field rides the message's section list
// instead of the inline payload.
func (k fieldKind) section() bool { return k == kRegion || k == kRight }

type fieldInfo struct {
	name string
	kind fieldKind
	// elem is the element type name for kStructList, with elemFields
	// its inline wire fields.
	elem       string
	elemFields []fieldInfo
}

// goType renders the field's declared type in the generated struct.
func (f fieldInfo) goType() string {
	switch f.kind {
	case kU8:
		return "uint8"
	case kU16:
		return "uint16"
	case kU32:
		return "uint32"
	case kU64:
		return "uint64"
	case kName, kRight:
		return "ipc.Name"
	case kStatus:
		return "rpc.Status"
	case kString:
		return "string"
	case kBytes, kTail:
		return "[]byte"
	case kRegion:
		return "ipc.OutOfLineRegion"
	case kStringList:
		return "[]string"
	case kStructList:
		return "[]" + f.elem
	}
	panic("unreachable")
}

// parseStruct reflects a defs prototype into its wire fields, in
// declaration order.
func parseStruct(proto any, allowSections bool) ([]fieldInfo, error) {
	t := reflect.TypeOf(proto)
	if t == nil || t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("prototype is %v, want a struct", t)
	}
	var out []fieldInfo
	sawTail := false
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		fi := fieldInfo{name: f.Name}
		tag := f.Tag.Get("mach")
		switch tag {
		case "tail":
			if f.Type.Kind() != reflect.Slice || f.Type.Elem().Kind() != reflect.Uint8 {
				return nil, fmt.Errorf("field %s: mach:\"tail\" requires []byte", f.Name)
			}
			fi.kind = kTail
		case "region":
			if f.Type.Name() != "OutOfLineRegion" {
				return nil, fmt.Errorf("field %s: mach:\"region\" requires ipc.OutOfLineRegion", f.Name)
			}
			fi.kind = kRegion
		case "right":
			if f.Type.Name() != "Name" {
				return nil, fmt.Errorf("field %s: mach:\"right\" requires ipc.Name", f.Name)
			}
			fi.kind = kRight
		case "extern":
			if f.Type.Kind() != reflect.Slice || f.Type.Elem().Kind() != reflect.Struct {
				return nil, fmt.Errorf("field %s: mach:\"extern\" requires a []T struct list", f.Name)
			}
			elem := f.Type.Elem()
			elemFields, err := parseStruct(reflect.New(elem).Elem().Interface(), false)
			if err != nil {
				return nil, fmt.Errorf("field %s element: %w", f.Name, err)
			}
			fi.kind = kStructList
			fi.elem = elem.Name()
			fi.elemFields = elemFields
		case "":
			switch {
			case f.Type.Name() == "Name" && strings.HasSuffix(f.Type.PkgPath(), "internal/ipc"):
				fi.kind = kName
			case f.Type.Name() == "Status" && strings.HasSuffix(f.Type.PkgPath(), "internal/rpc"):
				fi.kind = kStatus
			case f.Type.Kind() == reflect.Uint8:
				fi.kind = kU8
			case f.Type.Kind() == reflect.Uint16:
				fi.kind = kU16
			case f.Type.Kind() == reflect.Uint32:
				fi.kind = kU32
			case f.Type.Kind() == reflect.Uint64:
				fi.kind = kU64
			case f.Type.Kind() == reflect.String:
				fi.kind = kString
			case f.Type.Kind() == reflect.Slice && f.Type.Elem().Kind() == reflect.Uint8:
				fi.kind = kBytes
			case f.Type.Kind() == reflect.Slice && f.Type.Elem().Kind() == reflect.String:
				fi.kind = kStringList
			case f.Type.Kind() == reflect.Slice && f.Type.Elem().Kind() == reflect.Struct:
				return nil, fmt.Errorf("field %s: struct lists must name a target-package type with mach:\"extern\"", f.Name)
			default:
				return nil, fmt.Errorf("field %s: unsupported wire type %v", f.Name, f.Type)
			}
		default:
			return nil, fmt.Errorf("field %s: unknown mach tag %q", f.Name, tag)
		}
		if fi.kind.section() && !allowSections {
			return nil, fmt.Errorf("field %s: section fields are not allowed here", f.Name)
		}
		if sawTail && !fi.kind.section() {
			return nil, fmt.Errorf("field %s: follows a mach:\"tail\" field, which must be last", f.Name)
		}
		if fi.kind == kTail {
			sawTail = true
		}
		out = append(out, fi)
	}
	return out, nil
}

func inline(fields []fieldInfo) []fieldInfo {
	var out []fieldInfo
	for _, f := range fields {
		if !f.kind.section() {
			out = append(out, f)
		}
	}
	return out
}

func sections(fields []fieldInfo) []fieldInfo {
	var out []fieldInfo
	for _, f := range fields {
		if f.kind.section() {
			out = append(out, f)
		}
	}
	return out
}

func hasAliasing(fields []fieldInfo) bool {
	for _, f := range fields {
		if f.kind.aliasing() {
			return true
		}
	}
	return false
}

// gen accumulates one generated file.
type gen struct {
	b        strings.Builder
	needIpc  bool
	needRpc  bool
	needTime bool
}

func (g *gen) p(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// doc emits a comment block, wrapping the text at ~72 columns.
func (g *gen) doc(text string) {
	const width = 72
	for _, para := range strings.Split(text, "\n") {
		line := "//"
		for _, w := range strings.Fields(para) {
			if len(line)+1+len(w) > width && line != "//" {
				g.p("%s", line)
				line = "//"
			}
			line += " " + w
		}
		g.p("%s", line)
	}
}

// Generate renders one interface's zz_generated_machgen.go (formatted).
func Generate(iface idl.Interface) ([]byte, error) {
	g := &gen{}
	if err := g.iface(iface); err != nil {
		return nil, fmt.Errorf("%s: %w", iface.Name, err)
	}
	src, err := format.Source([]byte(g.render(iface)))
	if err != nil {
		return nil, fmt.Errorf("%s: generated code does not parse: %w\n%s", iface.Name, err, g.b.String())
	}
	return src, nil
}

// render prepends the header and import block (known only after the
// body decided what it needs).
func (g *gen) render(iface idl.Interface) string {
	var h strings.Builder
	fmt.Fprintf(&h, "// Code generated by machgen from repro/internal/idl/defs; DO NOT EDIT.\n")
	fmt.Fprintf(&h, "//\n// %s: %s.\n\n", iface.Name, iface.Doc)
	fmt.Fprintf(&h, "package %s\n\n", iface.GoPackage)
	var imports []string
	if g.needTime {
		imports = append(imports, `"time"`)
	}
	if g.needIpc {
		imports = append(imports, `"repro/internal/ipc"`)
	}
	if g.needRpc {
		imports = append(imports, `"repro/internal/rpc"`)
	}
	if len(imports) > 0 {
		fmt.Fprintf(&h, "import (\n")
		for _, im := range imports {
			fmt.Fprintf(&h, "\t%s\n", im)
		}
		fmt.Fprintf(&h, ")\n\n")
	}
	return h.String() + g.b.String()
}

// method is a parsed idl.Method.
type method struct {
	idl.Method
	req, rep []fieldInfo // nil prototypes parse to nil field lists
}

func (m *method) reqName() string { return m.Name + "Request" }
func (m *method) repName() string { return m.Name + "Reply" }

// batchable: rpc.Batch coalesces calls into ONE message, so sub-calls
// cannot carry sections in either direction.
func (m *method) batchable() bool {
	return len(sections(m.req)) == 0 && len(sections(m.rep)) == 0
}

func (g *gen) iface(iface idl.Interface) error {
	methods := make([]*method, 0, len(iface.Methods))
	for _, im := range iface.Methods {
		m := &method{Method: im}
		var err error
		if im.Request != nil {
			if m.req, err = parseStruct(im.Request, true); err != nil {
				return fmt.Errorf("method %s request: %w", im.Name, err)
			}
		}
		if im.Reply != nil {
			if m.rep, err = parseStruct(im.Reply, true); err != nil {
				return fmt.Errorf("method %s reply: %w", im.Name, err)
			}
		}
		methods = append(methods, m)
	}

	if len(methods) > 0 && !iface.NoIDs {
		g.needIpc = true
		g.doc(fmt.Sprintf("Request IDs of the %s protocol (%d+).", iface.Name, iface.BaseID))
		g.p("const (")
		for i, m := range methods {
			g.doc(fmt.Sprintf("Msg%s: %s.", m.Name, m.Doc))
			if i == 0 {
				g.p("Msg%s ipc.MsgID = %d + iota", m.Name, iface.BaseID)
			} else {
				g.p("Msg%s", m.Name)
			}
		}
		g.p(")")
		g.p("")
	}

	for _, m := range methods {
		if m.req != nil {
			g.wireStruct(m.reqName(), fmt.Sprintf("%s carries the Msg%s request payload.", m.reqName(), m.Name), m.req)
		}
		if m.rep != nil {
			g.wireStruct(m.repName(), fmt.Sprintf("%s carries the Msg%s reply payload.", m.repName(), m.Name), m.rep)
		}
	}

	if !iface.NoServer && len(methods) > 0 {
		g.serverAPI(iface, methods)
	}
	if !iface.NoClient && len(methods) > 0 {
		g.client(iface, methods)
	}

	for _, st := range iface.Structs {
		fields, err := parseStruct(st.Proto, false)
		if err != nil {
			return fmt.Errorf("struct %s: %w", st.Name, err)
		}
		g.wireStruct(st.Name, fmt.Sprintf("%s: %s.", st.Name, st.Doc), fields)
	}

	for _, r := range iface.Records {
		if err := g.record(r); err != nil {
			return err
		}
	}
	return nil
}

// wireStruct emits the type declaration and its payload codec (and
// section carriage, for structs with section fields).
func (g *gen) wireStruct(name, doc string, fields []fieldInfo) {
	g.needRpc = true
	g.doc(doc)
	g.p("type %s struct {", name)
	for _, f := range fields {
		if strings.HasPrefix(f.goType(), "ipc.") {
			g.needIpc = true
		}
		g.p("%s %s", f.name, f.goType())
	}
	g.p("}")
	g.p("")

	in := inline(fields)
	g.doc(fmt.Sprintf("encodePayload appends the inline fields of %s in wire order.", name))
	g.p("func (x *%s) encodePayload(e *rpc.Enc) {", name)
	for _, f := range in {
		g.encodeField(f, "x."+f.name, "e")
	}
	if len(in) == 0 {
		g.p("_ = e")
	}
	g.p("}")
	g.p("")

	g.doc(fmt.Sprintf("decodePayload reads the inline fields of %s; check d.Err() after. Byte-slice fields alias the payload.", name))
	g.p("func (x *%s) decodePayload(d *rpc.Dec) {", name)
	for _, f := range in {
		g.decodeField(f, "x."+f.name, "d")
	}
	if len(in) == 0 {
		g.p("_ = d")
	}
	g.p("}")
	g.p("")

	secs := sections(fields)
	if len(secs) == 0 {
		return
	}
	g.needIpc = true
	g.doc(fmt.Sprintf("sections builds %s's carried sections in field order (absent fields — nil regions, zero rights — are not carried).", name))
	g.p("func (x *%s) sections() []ipc.Section {", name)
	g.p("var out []ipc.Section")
	for _, f := range secs {
		switch f.kind {
		case kRegion:
			g.p("if x.%s != nil {", f.name)
			g.p("out = append(out, ipc.CarryRegion(x.%s))", f.name)
			g.p("}")
		case kRight:
			g.p("if x.%s != 0 {", f.name)
			g.p("out = append(out, ipc.CarryRight(x.%s, ipc.SendRight))", f.name)
			g.p("}")
		}
	}
	g.p("return out")
	g.p("}")
	g.p("")

	g.doc(fmt.Sprintf("takeSections consumes the message's carried sections into %s's section fields, in field order.", name))
	g.p("func (x *%s) takeSections(secs *rpc.Sections) {", name)
	for _, f := range secs {
		switch f.kind {
		case kRegion:
			g.p("x.%s = secs.NextRegion()", f.name)
		case kRight:
			g.p("x.%s = secs.NextRight()", f.name)
		}
	}
	g.p("}")
	g.p("")
}

func (g *gen) encodeField(f fieldInfo, expr, enc string) {
	switch f.kind {
	case kU8:
		g.p("%s.U8(%s)", enc, expr)
	case kU16:
		g.p("%s.U16(%s)", enc, expr)
	case kU32:
		g.p("%s.U32(%s)", enc, expr)
	case kU64:
		g.p("%s.U64(%s)", enc, expr)
	case kName:
		g.p("%s.Name(%s)", enc, expr)
	case kStatus:
		g.p("%s.Status(%s)", enc, expr)
	case kString:
		g.p("%s.String(%s)", enc, expr)
	case kBytes:
		g.p("%s.Bytes(%s)", enc, expr)
	case kTail:
		g.p("%s.Tail(%s)", enc, expr)
	case kStringList:
		g.p("%s.U32(uint32(len(%s)))", enc, expr)
		g.p("for i := range %s {", expr)
		g.p("%s.String(%s[i])", enc, expr)
		g.p("}")
	case kStructList:
		g.p("%s.U32(uint32(len(%s)))", enc, expr)
		g.p("for i := range %s {", expr)
		for _, ef := range f.elemFields {
			g.encodeField(ef, expr+"[i]."+ef.name, enc)
		}
		g.p("}")
	}
}

func (g *gen) decodeField(f fieldInfo, expr, dec string) {
	switch f.kind {
	case kU8:
		g.p("%s = %s.U8()", expr, dec)
	case kU16:
		g.p("%s = %s.U16()", expr, dec)
	case kU32:
		g.p("%s = %s.U32()", expr, dec)
	case kU64:
		g.p("%s = %s.U64()", expr, dec)
	case kName:
		g.p("%s = %s.Name()", expr, dec)
	case kStatus:
		g.p("%s = %s.Status()", expr, dec)
	case kString:
		g.p("%s = %s.String()", expr, dec)
	case kBytes:
		g.p("%s = %s.Bytes()", expr, dec)
	case kTail:
		g.p("%s = %s.Tail()", expr, dec)
	case kStringList:
		g.p("{")
		g.p("n := %s.U32()", dec)
		g.p("%s = make([]string, 0, rpc.ListCap(n))", expr)
		g.p("for i := 0; i < int(n); i++ {")
		g.p("if %s.Err() != nil {", dec)
		g.p("break")
		g.p("}")
		g.p("%s = append(%s, %s.String())", expr, expr, dec)
		g.p("}")
		g.p("}")
	case kStructList:
		g.p("{")
		g.p("n := %s.U32()", dec)
		g.p("%s = make([]%s, 0, rpc.ListCap(n))", expr, f.elem)
		g.p("for i := 0; i < int(n); i++ {")
		g.p("if %s.Err() != nil {", dec)
		g.p("break")
		g.p("}")
		g.p("var el %s", f.elem)
		for _, ef := range f.elemFields {
			g.decodeField(ef, "el."+ef.name, dec)
		}
		g.p("%s = append(%s, el)", expr, expr)
		g.p("}")
		g.p("}")
	}
}

// serverAPI emits the typed handler interface and the demux installer.
func (g *gen) serverAPI(iface idl.Interface, methods []*method) {
	g.needIpc = true
	g.needRpc = true
	api := iface.Name + "ServerAPI"
	g.doc(fmt.Sprintf("%s is the typed handler surface of the %s protocol: one method per request ID, demuxed by Register%sServer. m is the raw request message (demux state, further sections); decoded byte-slice fields alias it, so handlers retain only copies. Returning an error sends an error reply carrying rpc.StatusOf(err).", api, iface.Name, iface.Name))
	g.p("type %s interface {", api)
	for _, m := range methods {
		g.p("%s", g.apiSig(m))
	}
	g.p("}")
	g.p("")

	g.doc(fmt.Sprintf("Register%sServer installs the generated demux for every %s method on srv.", iface.Name, iface.Name))
	g.p("func Register%sServer(srv *rpc.Server, api %s) {", iface.Name, api)
	for _, m := range methods {
		g.p("srv.Handle(Msg%s, func(m *ipc.Message, d *rpc.Dec) (*rpc.Reply, error) {", m.Name)
		args := "m"
		if m.req != nil {
			g.p("var in %s", m.reqName())
			g.p("in.decodePayload(d)")
			if len(sections(m.req)) > 0 {
				g.p("secs := rpc.NewSections(m)")
				g.p("in.takeSections(&secs)")
			}
			g.p("if err := d.Err(); err != nil {")
			g.p("return nil, err")
			g.p("}")
			args += ", &in"
		}
		if m.rep != nil {
			g.p("out, err := api.%s(%s)", m.Name, args)
			g.p("if err != nil {")
			g.p("return nil, err")
			g.p("}")
			g.p("r := rpc.NewReply()")
			g.p("out.encodePayload(&r.Enc)")
			if len(sections(m.rep)) > 0 {
				g.p("for _, s := range out.sections() {")
				g.p("r.Carry(s)")
				g.p("}")
			}
			g.p("return r, nil")
		} else {
			g.p("if err := api.%s(%s); err != nil {", m.Name, args)
			g.p("return nil, err")
			g.p("}")
			g.p("return rpc.NewReply(), nil")
		}
		g.p("})")
	}
	g.p("}")
	g.p("")
}

func (g *gen) apiSig(m *method) string {
	params := "m *ipc.Message"
	if m.req != nil {
		params += ", in *" + m.reqName()
	}
	if m.rep != nil {
		return fmt.Sprintf("%s(%s) (*%s, error)", m.Name, params, m.repName())
	}
	return fmt.Sprintf("%s(%s) error", m.Name, params)
}

// client emits the typed client and its per-method (and batch) stubs.
func (g *gen) client(iface idl.Interface, methods []*method) {
	g.needIpc = true
	g.needRpc = true
	g.needTime = true
	cl := iface.Name + "Client"
	g.doc(fmt.Sprintf("%s is the generated typed client of the %s protocol.", cl, iface.Name))
	g.p("type %s struct {", cl)
	g.p("c *rpc.Client")
	g.p("}")
	g.p("")
	g.doc(fmt.Sprintf("New%s builds a client against a published %s service port. A zero timeout means rpc.DefaultTimeout.", cl, iface.Name))
	g.p("func New%s(space *ipc.Space, svc ipc.Name, timeout time.Duration) %s {", cl, cl)
	g.p("return %s{c: rpc.NewClient(space, svc, timeout)}", cl)
	g.p("}")
	g.p("")
	g.doc("RPC returns the underlying transport client (for rpc.Batch and custom calls).")
	g.p("func (c %s) RPC() *rpc.Client { return c.c }", cl)
	g.p("")

	for _, m := range methods {
		g.clientStub(iface, cl, m)
		if iface.Batch && m.batchable() {
			g.batchStub(cl, m)
		}
	}
}

func (g *gen) clientStub(iface idl.Interface, cl string, m *method) {
	params := ""
	if m.req != nil {
		params = fmt.Sprintf("in *%s", m.reqName())
	}
	rets := "(rpc.Status, error)"
	if m.rep != nil {
		rets = fmt.Sprintf("(*%s, rpc.Status, error)", m.repName())
	}
	g.doc(fmt.Sprintf("%s performs one Msg%s call: %s. A non-OK status is returned in-band for the caller to map; err covers transport failures and undecodable replies.", m.Name, m.Name, m.Doc))
	g.p("func (c %s) %s(%s) %s {", cl, m.Name, params, rets)
	fail := `return 0, err`
	if m.rep != nil {
		fail = `return nil, 0, err`
	}
	call := fmt.Sprintf("rpc.Call(Msg%s, nil)", m.Name)
	if m.req != nil {
		g.p("req := rpc.NewEnc()")
		g.p("in.encodePayload(req)")
		call = fmt.Sprintf("c.c.Call(Msg%s, req", m.Name)
		if len(sections(m.req)) > 0 {
			call += ", in.sections()..."
		}
		call += ")"
	} else {
		call = fmt.Sprintf("c.c.Call(Msg%s, nil)", m.Name)
	}
	g.p("resp, err := %s", call)
	g.p("if err != nil {")
	g.p("%s", fail)
	g.p("}")
	g.p("st := resp.Status")
	if m.rep == nil {
		g.p("resp.Release()")
		g.p("return st, nil")
		g.p("}")
		g.p("")
		return
	}
	g.p("if st != rpc.StatusOK {")
	g.p("resp.Release()")
	g.p("return nil, st, nil")
	g.p("}")
	g.p("out := new(%s)", m.repName())
	g.p("out.decodePayload(resp.Dec)")
	if len(sections(m.rep)) > 0 {
		g.p("secs := rpc.NewSections(resp.Msg)")
		g.p("out.takeSections(&secs)")
	}
	g.p("if err := resp.Dec.Err(); err != nil {")
	g.p("%s", fail)
	g.p("}")
	if hasAliasing(m.rep) {
		g.doc("The decoded reply aliases the message buffer; the message stays with the caller's result instead of returning to the pool.")
	} else {
		g.p("resp.Release()")
	}
	g.p("return out, st, nil")
	g.p("}")
	g.p("")
}

func (g *gen) batchStub(cl string, m *method) {
	pend := m.Name + "Pending"
	params := "b *rpc.Batch"
	if m.req != nil {
		params += fmt.Sprintf(", in *%s", m.reqName())
	}
	g.doc(fmt.Sprintf("%sBatch adds a Msg%s call to b, pipelined with the batch's other calls into one message. Read the handle after b.Commit().", m.Name, m.Name))
	g.p("func (c %s) %sBatch(%s) %s {", cl, m.Name, params, pend)
	if m.req != nil {
		g.p("req := rpc.NewEnc()")
		g.p("in.encodePayload(req)")
		g.p("return %s{bc: b.Add(Msg%s, req)}", pend, m.Name)
	} else {
		g.p("return %s{bc: b.Add(Msg%s, nil)}", pend, m.Name)
	}
	g.p("}")
	g.p("")

	g.doc(fmt.Sprintf("%s is the pending handle of a batched Msg%s call.", pend, m.Name))
	g.p("type %s struct {", pend)
	g.p("bc *rpc.BatchCall")
	g.p("}")
	g.p("")

	rets := "(rpc.Status, error)"
	if m.rep != nil {
		rets = fmt.Sprintf("(*%s, rpc.Status, error)", m.repName())
	}
	g.doc("Result reads the call's own outcome after Commit: its status (calls fail independently inside a batch) and decoded reply.")
	g.p("func (p %s) Result() %s {", pend, rets)
	fail := "return 0, rpc.ErrBatchNoReply"
	if m.rep != nil {
		fail = "return nil, 0, rpc.ErrBatchNoReply"
	}
	g.p("if !p.bc.Done() {")
	g.p("%s", fail)
	g.p("}")
	g.p("st := p.bc.Status()")
	if m.rep == nil {
		g.p("return st, nil")
		g.p("}")
		g.p("")
		return
	}
	g.p("if st != rpc.StatusOK {")
	g.p("return nil, st, nil")
	g.p("}")
	g.p("out := new(%s)", m.repName())
	g.p("d := p.bc.Dec()")
	g.p("out.decodePayload(d)")
	g.p("if err := d.Err(); err != nil {")
	g.p("return nil, 0, err")
	g.p("}")
	g.p("return out, st, nil")
	g.p("}")
	g.p("")
}

// record emits a shared-memory layout as constants (and, for array
// records, an offset helper).
func (g *gen) record(r idl.Record) error {
	if r.Stride > 0 {
		g.doc(fmt.Sprintf("Record %s: %s.", r.Name, r.Doc))
		g.p("const %sSlotBytes = %d", r.Name, r.Stride*8)
		g.p("")
		g.doc(fmt.Sprintf("%sSlotOffset returns the byte offset of slot i in the %s record.", r.Name, r.Name))
		g.p("func %sSlotOffset(i int) uint64 { return uint64(i) * %sSlotBytes }", r.Name, r.Name)
		g.p("")
		return nil
	}
	if len(r.Fields) == 0 {
		return fmt.Errorf("record %s: neither Fields nor Stride", r.Name)
	}
	g.doc(fmt.Sprintf("Record %s: %s.", r.Name, r.Doc))
	g.p("const (")
	off := 0
	for _, f := range r.Fields {
		g.doc(fmt.Sprintf("%s: %s.", f.Name, f.Doc))
		g.p("%s = %d", f.Name, off)
		off += f.Words * 8
	}
	g.doc(fmt.Sprintf("%sBytes is the record's total size.", r.Name))
	g.p("%sBytes = %d", r.Name, off)
	g.p(")")
	g.p("")
	return nil
}
