package main

import (
	"os"
	"testing"

	"repro/internal/idl"
	"repro/internal/idl/defs"
	"repro/internal/ipc"
)

// TestGoldenNetMem pins the generator's output for one complete
// interface. If a generator change alters the emitted code, this fails
// with instructions rather than letting the change ride in silently —
// regenerate the golden with the committed tree's real output:
//
//	go run ./cmd/machgen && cp internal/netmem/zz_generated_machgen.go \
//	    cmd/machgen/testdata/netmem.go.golden
func TestGoldenNetMem(t *testing.T) {
	got, err := Generate(defs.NetMem)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/netmem.go.golden")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("generated output for NetMem drifted from testdata/netmem.go.golden;\n"+
			"if the change is intentional run:\n"+
			"  go run ./cmd/machgen && cp internal/netmem/zz_generated_machgen.go cmd/machgen/testdata/netmem.go.golden\n"+
			"got %d bytes, want %d bytes", len(got), len(want))
	}
}

// TestGenerateAllDefs proves every registered interface generates and
// formats cleanly — a definition mistake fails here, not at go build.
func TestGenerateAllDefs(t *testing.T) {
	for _, iface := range defs.All {
		if _, err := Generate(iface); err != nil {
			t.Errorf("%s: %v", iface.Name, err)
		}
	}
}

// TestGenerateRejectsBadDefinitions pins the parser's error checking:
// wire-unmappable field shapes must be reported, not emitted.
func TestGenerateRejectsBadDefinitions(t *testing.T) {
	cases := []struct {
		name  string
		iface idl.Interface
	}{
		{"tail not last", idl.Interface{
			Name: "Bad", GoPackage: "bad", Dir: ".", BaseID: 9000,
			Methods: []idl.Method{{
				Name: "M",
				Request: struct {
					Data []byte `mach:"tail"`
					Size uint64
				}{},
			}},
		}},
		{"tail wrong type", idl.Interface{
			Name: "Bad", GoPackage: "bad", Dir: ".", BaseID: 9000,
			Methods: []idl.Method{{
				Name: "M",
				Request: struct {
					Data string `mach:"tail"`
				}{},
			}},
		}},
		{"right wrong type", idl.Interface{
			Name: "Bad", GoPackage: "bad", Dir: ".", BaseID: 9000,
			Methods: []idl.Method{{
				Name: "M",
				Request: struct {
					Port uint64 `mach:"right"`
				}{},
			}},
		}},
		{"struct list without extern", idl.Interface{
			Name: "Bad", GoPackage: "bad", Dir: ".", BaseID: 9000,
			Methods: []idl.Method{{
				Name: "M",
				Reply: struct {
					Items []struct{ X uint64 }
				}{},
			}},
		}},
		{"unsupported field type", idl.Interface{
			Name: "Bad", GoPackage: "bad", Dir: ".", BaseID: 9000,
			Methods: []idl.Method{{
				Name: "M",
				Request: struct {
					F float64
				}{},
			}},
		}},
		{"section in request", idl.Interface{
			Name: "Bad", GoPackage: "bad", Dir: ".", BaseID: 9000,
			Structs: []idl.Struct{{
				Name: "S",
				Proto: struct {
					Port ipc.Name `mach:"right"`
				}{},
			}},
		}},
	}
	for _, tc := range cases {
		if _, err := Generate(tc.iface); err == nil {
			t.Errorf("%s: generated without error", tc.name)
		}
	}
}
