// Package mach is the public API of the Mach reproduction: a user-level
// simulation of the multiprocessor operating system described in "The
// Duality of Memory and Communication in the Implementation of a
// Multiprocessor Operating System" (Young et al., SOSP 1987).
//
// The five Mach abstractions are all here:
//
//   - Task and Thread (execution control, §3.1) — create with
//     Kernel.NewTask, Task.Fork, Task.SpawnThread.
//   - Port and Message (IPC, §3.2) — every task has a port name Space;
//     msg_send / msg_receive / msg_rpc are Task.Send / Task.Receive /
//     Task.RPC; Tables 3-1 and 3-2 map to the Space methods. A server
//     bootstraps a client with Space.CopySendRight. Name spaces are
//     sharded and delivery is per-port, so IPC throughput scales with
//     concurrent senders.
//   - Memory object (external memory management, §3.4) — data managers
//     are built on Manager/Handler (Table 3-5 arrives as Handler calls;
//     Table 3-6 goes out through MemoryObject methods), and applications
//     map objects with Task.VMAllocateWithPager (Table 3-4).
//
// One Kernel simulates one host. Kernels constructed over a shared
// Topology form a multiprocessor complex (UMA, NUMA or NORMA, §7);
// message and memory costs are charged to a virtual Clock so experiments
// are deterministic.
//
// The package also re-exports the paper's application suite: the minimal
// filesystem (§4.1), consistent network shared memory (§4.2), UNIX
// emulation paths (§8.1), copy-on-reference migration (§8.2), and the
// Camelot-style recoverable virtual memory manager (§8.3).
//
// Quick start:
//
//	k := mach.NewKernel(mach.Config{})
//	defer k.Shutdown()
//	task := k.NewTask()
//	addr, _ := task.VMAllocate(0, 1<<20, true)   // vm_allocate
//	_ = task.VMWrite(addr, []byte("hello"))
//	child, _ := task.Fork()                      // copy-on-write
package mach

import (
	"time"

	"repro/internal/camelot"
	"repro/internal/fs"
	"repro/internal/iomgr"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/lifecycle"
	"repro/internal/machine"
	"repro/internal/migrate"
	"repro/internal/netmem"
	"repro/internal/netmsg"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/rpc"
	"repro/internal/unixemu"
	"repro/internal/vm"
)

// --- kernel, tasks, threads -------------------------------------------------

// Kernel is one simulated Mach kernel (one host).
type Kernel = kern.Kernel

// Config sizes a kernel; the zero value gives 1024 frames of 4 KiB on a
// private UMA host.
type Config = kern.Config

// Task is the basic unit of resource allocation (§3.1).
type Task = kern.Task

// Thread is the basic unit of computation (§3.1).
type Thread = kern.Thread

// NewKernel boots a kernel (VM system, object cache, default pager).
func NewKernel(cfg Config) *Kernel { return kern.NewKernel(cfg) }

// --- machine substrate --------------------------------------------------------

// Clock is the deterministic virtual clock experiments read.
type Clock = machine.Clock

// Topology is the interconnect between hosts of one complex.
type Topology = machine.Topology

// Disk is a simulated block device with an operation counter.
type Disk = machine.Disk

// HostID identifies a host on a topology.
type HostID = machine.HostID

// Arch selects a multiprocessor class (§7).
type Arch = machine.Arch

// CostModel carries the latency parameters of a multiprocessor class.
type CostModel = machine.CostModel

// Multiprocessor classes (§7).
const (
	UMA   = machine.UMA
	NUMA  = machine.NUMA
	NORMA = machine.NORMA
)

// NewClock returns a virtual clock at zero.
func NewClock() *Clock { return machine.NewClock() }

// NewTopology builds an interconnect with the given cost model.
func NewTopology(model CostModel, clock *Clock) *Topology {
	return machine.NewTopology(model, clock)
}

// ModelFor returns the paper-calibrated cost model for an architecture.
func ModelFor(a Arch) CostModel { return machine.ModelFor(a) }

// NewDisk creates a simulated disk charging latency to clock.
func NewDisk(blocks, blockSize int, latency DiskLatency, clock *Clock) *Disk {
	return machine.NewDisk(blocks, blockSize, latency, clock)
}

// DiskLatency is the per-operation cost of a Disk.
type DiskLatency = time.Duration

// DefaultDiskLatency approximates a late-1980s disk access.
const DefaultDiskLatency = machine.DefaultDiskLatency

// Complex boots n kernels sharing one clock, one interconnect of the
// given architecture, and one netmsg network — the shape every
// multi-host experiment uses. Services checked in on any host resolve
// from every host (see NetMsgCheckIn / NetMsgLookUp).
func Complex(n int, arch Arch, framesPerHost, pageSize int) ([]*Kernel, *Topology, *Clock) {
	clock := machine.NewClock()
	topo := machine.NewTopology(machine.ModelFor(arch), clock)
	nmNet := netmsg.NewNetwork()
	kernels := make([]*Kernel, n)
	for i := range kernels {
		kernels[i] = kern.NewKernel(kern.Config{
			Host:     machine.HostID(i),
			Frames:   framesPerHost,
			PageSize: pageSize,
			Clock:    clock,
			Topo:     topo,
			NetMsg:   nmNet,
		})
	}
	return kernels, topo, clock
}

// --- IPC ---------------------------------------------------------------------

// Port name, rights, messages (§3.2, Tables 3-1 and 3-2).
type (
	// Name is a task-local port name.
	Name = ipc.Name
	// Message is a Mach message: header plus typed sections.
	Message = ipc.Message
	// Section is one typed item of a message body.
	Section = ipc.Section
	// MsgID tags message kinds.
	MsgID = ipc.MsgID
	// Space is a task's port name space.
	Space = ipc.Space
	// SendOptions / ReceiveOptions control msg_send / msg_receive.
	SendOptions    = ipc.SendOptions
	ReceiveOptions = ipc.ReceiveOptions
)

// Rights and the receive-any sentinel.
const (
	SendRight    = ipc.SendRight
	ReceiveRight = ipc.ReceiveRight
	ReceiveAny   = ipc.ReceiveAny
)

// Message body constructors.
var (
	// InlineBytes builds an inline data section (copied eagerly).
	InlineBytes = ipc.InlineBytes
	// CarryRight builds a section transferring a port right.
	CarryRight = ipc.CarryRight
	// CarryRegion builds an out-of-line section (moved copy-on-write).
	CarryRegion = ipc.CarryRegion
	// GetMessage returns a pooled empty message — the allocation-free
	// send path. Build it with AppendInline/AppendSection/InlineCopy;
	// the final owner (normally the receiver) recycles it with
	// Message.Release.
	GetMessage = ipc.GetMessage
	// AllocSlab draws a pooled byte buffer from a power-of-two size
	// class for out-of-line payload staging; release it with
	// Slab.Release when no message references it anymore.
	AllocSlab = ipc.AllocSlab
)

// Slab is a pooled out-of-line payload buffer (see AllocSlab).
type Slab = ipc.Slab

// --- port sets ---------------------------------------------------------------

// Port sets multiplex many receive rights through one receive point,
// the shape of the paper's servers (§4-§5): Space.AllocatePortSet
// creates a set, Space.MoveToPortSet / Space.RemoveFromPortSet manage
// membership, and Task.Receive / Space.Receive on the set's name drains
// the members with fair round-robin rotation. Members keep their own
// queues and backlogs (per-port backpressure is untouched); a member's
// messages arrive ONLY through the set (direct receives answer
// ErrInSet, receive-any skips members), so a message is never delivered
// twice. RPCServer.ServePorts serves several services from one
// goroutine over a set; pager managers (fs, netmem, camelot) multiplex
// their object ports the same way.

// Port-set errors.
var (
	// ErrInSet: direct receive from a port-set member.
	ErrInSet = ipc.ErrInSet
	// ErrNotSet: a port-set operation named an ordinary port.
	ErrNotSet = ipc.ErrNotSet
	// ErrNotInSet: removing a port from a set it is not in.
	ErrNotInSet = ipc.ErrNotInSet
)

// --- port lifecycle -----------------------------------------------------------

// The port-lifecycle subsystem: the kernel counts every extant send
// right (space-held, in transit inside messages, kernel references), a
// receiver arms Space.RequestNoSenders to learn when its last client is
// gone, and dead ports leave dead names behind (ErrDeadName) instead of
// freeing names that could alias fresh ports. The LifecycleWatcher is
// the consumer layer: it drains a space's notifications and runs
// per-name callbacks with the make-send staleness check applied.
type LifecycleWatcher = lifecycle.Watcher

// NewLifecycleWatcher builds a watcher over a space's notifications
// (run with `go w.Run()`, or chain w.Dispatch into a manager loop).
var NewLifecycleWatcher = lifecycle.New

// ErrDeadName: the name refers to a port whose receive right was
// destroyed; the name stays reserved until deallocated.
var ErrDeadName = ipc.ErrDeadName

// Kernel notification message IDs delivered on a space's notify port.
const (
	// MsgIDPortDeleted: a port this space held send rights to died.
	MsgIDPortDeleted = ipc.MsgIDPortDeleted
	// MsgIDNoSenders: a port this space requested notification for has
	// no extant send rights left.
	MsgIDNoSenders = ipc.MsgIDNoSenders
	// MsgIDDeadName: a send right this space armed with
	// Space.RequestDeadName went dead. Confirm with
	// Space.ConfirmDeadName (or register through
	// LifecycleWatcher.OnDeadName, which confirms for you) — the
	// notification carries the name entry's generation as its staleness
	// guard.
	MsgIDDeadName = ipc.MsgIDDeadName
)

// NotifyQueueCap bounds a space's notify-port queue; overflow is
// dropped and counted by Space.DeadLetters.
const NotifyQueueCap = ipc.NotifyQueueCap

// --- typed RPC layer ---------------------------------------------------------

// The MIG analogue: one typed interface layer every server and client
// speak over ports. Define message IDs, register RPCHandler funcs on an
// RPCServer, and call through an RPCClient with Enc-built payloads; the
// codec, status space and demux replace per-server wire formats.
type (
	// RPCServer demuxes a service port to registered handlers.
	RPCServer = rpc.Server
	// RPCClient issues typed calls against a service port.
	RPCClient = rpc.Client
	// RPCHandler serves one request.
	RPCHandler = rpc.HandlerFunc
	// RPCReply is a reply under construction.
	RPCReply = rpc.Reply
	// RPCStatus is the canonical status/errno space.
	RPCStatus = rpc.Status
	// RPCBatch coalesces many calls into one pipelined message
	// (Client.NewBatch / Batch.Add / Batch.Commit).
	RPCBatch = rpc.Batch
	// RPCBatchCall is one pending call inside a batch.
	RPCBatchCall = rpc.BatchCall
	// Enc / Dec are the typed payload cursor codecs.
	Enc = rpc.Enc
	Dec = rpc.Dec
)

// Canonical RPC status values (the rpc.Status space).
const (
	StatusOK        = rpc.StatusOK
	StatusNotFound  = rpc.StatusNotFound
	StatusExists    = rpc.StatusExists
	StatusFull      = rpc.StatusFull
	StatusTooLarge  = rpc.StatusTooLarge
	StatusDead      = rpc.StatusDead
	StatusBadArgs   = rpc.StatusBadArgs
	StatusBadID     = rpc.StatusBadID
	StatusServerErr = rpc.StatusServerErr
)

// NewRPCServer allocates a service port on space and returns its demux.
func NewRPCServer(space *Space, opts ...rpc.Option) (*RPCServer, error) {
	return rpc.NewServer(space, opts...)
}

// WithRPCWorkers sizes the server's worker pool (default 1, serial).
var WithRPCWorkers = rpc.WithWorkers

// NewRPCClient builds a typed client for a published service port.
func NewRPCClient(space *Space, svc Name, timeout time.Duration) *RPCClient {
	return rpc.NewClient(space, svc, timeout)
}

// Typed payload helpers.
var (
	// NewEnc starts an empty payload encoder.
	NewEnc = rpc.NewEnc
	// NewDec starts a length-checked decoder over a payload.
	NewDec = rpc.NewDec
	// NewRPCReply starts an empty reply.
	NewRPCReply = rpc.NewReply
	// PutU64 / U64 are the raw little-endian word accessors for code
	// treating task memory as an array of u64 words.
	PutU64 = rpc.PutU64
	U64    = rpc.U64
)

// --- cross-host IPC (network message server) ---------------------------------

// The netmsg layer makes IPC location-transparent across the hosts of a
// complex, in the style of Mach's netmsgserver: a send right looked up
// on another host arrives as a local proxy port whose traffic is
// forwarded home over the interconnect (with reply ports and embedded
// rights re-proxied recursively, and out-of-line regions riding the
// kernel's cross-host copy machinery). Every Kernel runs one
// NetMsgServer; kernels built by Complex share one NetMsgNetwork.
type (
	// NetMsgServer is one host's network message server.
	NetMsgServer = netmsg.Server
	// NetMsgNetwork connects the message servers of one complex.
	NetMsgNetwork = netmsg.Network
	// NetMsgStats is one server's proxy and registry counters — the
	// observable surface of the distributed proxy GC (see
	// NetMsgServer.Stats).
	NetMsgStats = netmsg.Stats
)

// NewNetMsgNetwork creates a message-server network for kernels built
// by hand (Complex does this automatically); pass it in Config.NetMsg.
func NewNetMsgNetwork() *NetMsgNetwork { return netmsg.NewNetwork() }

// ErrNetMsgNotFound: no service checked in under that name on any host.
var ErrNetMsgNotFound = netmsg.ErrNotFound

// NetMsgCheckIn registers the named right of task t (a send right to a
// service port) with t's host message server under name, making the
// service reachable by name from every host of the complex.
func NetMsgCheckIn(t *Task, name string, port Name) error {
	svc, err := t.Kernel().NetMsg().Publish(t.Space)
	if err != nil {
		return err
	}
	return netmsg.CheckIn(t.Space, svc, name, port)
}

// NetMsgLookUp resolves a service name through t's host message server
// and returns a send right installed in t's space: the real port for a
// local service, a forwarding proxy for a remote one. The right is
// usable with every port-based API, RPCClient and
// VMAllocateWithPager included.
func NetMsgLookUp(t *Task, name string) (Name, error) {
	svc, err := t.Kernel().NetMsg().Publish(t.Space)
	if err != nil {
		return 0, err
	}
	return netmsg.LookUp(t.Space, svc, name)
}

// --- virtual memory ------------------------------------------------------------

// Protection, inheritance and region description (Table 3-3).
type (
	// Prot is a protection value (read/write/execute bits).
	Prot = vm.Prot
	// Inherit controls fork-time inheritance of a region.
	Inherit = vm.Inherit
	// RegionInfo is one vm_regions entry.
	RegionInfo = vm.RegionInfo
	// VMStatistics is the vm_statistics result.
	VMStatistics = vm.Statistics
	// FaultPolicy is the memory-failure policy of §6.2.1.
	FaultPolicy = vm.FaultPolicy
)

// Protection bits and inheritance modes.
const (
	ProtNone    = vm.ProtNone
	ProtRead    = vm.ProtRead
	ProtWrite   = vm.ProtWrite
	ProtExecute = vm.ProtExecute
	ProtAll     = vm.ProtAll
	ProtDefault = vm.ProtDefault

	InheritCopy  = vm.InheritCopy
	InheritShare = vm.InheritShare
	InheritNone  = vm.InheritNone
)

// ErrMemoryFailure is returned by faults whose data manager failed
// (§6.2.1).
var ErrMemoryFailure = vm.ErrMemoryFailure

// --- external memory management -------------------------------------------------

// Data manager toolkit (§3.4): Manager runs a data manager task's service
// loop, Handler receives the Table 3-5 calls, MemoryObject sends the
// Table 3-6 calls.
type (
	Manager      = pager.Manager
	Handler      = pager.Handler
	MemoryObject = pager.MemoryObject
	NopHandler   = pager.NopHandler
	// DefaultPager is the trusted backing-store manager of §6.2.2.
	DefaultPager = pager.DefaultPager
)

// NewManager wraps a space and handler into a manager service loop.
func NewManager(space *Space, h Handler) *Manager { return pager.NewManager(space, h) }

// --- durable storage & the I/O manager ----------------------------------------

// The asynchronous block I/O subsystem: iomgr files submit ReadAt /
// WriteAt / Fsync operations into a submission ring drained in batches
// by an io_uring backend (Linux) or a portable worker pool — identical
// semantics either way. A FileVolume is a BlockStore over such a file,
// a FramePool is a frame-table buffer cache over any BlockStore, and a
// DefaultPager layered on either pages real files instead of the Go
// heap (Config.PagingStore / Config.PagingFrames boot a kernel that
// way).
type (
	// IOFile is an asynchronous-I/O file handle (see IOOpen).
	IOFile = iomgr.File
	// IOOp is one in-flight operation; Await blocks for completion.
	IOOp = iomgr.Op
	// IOOptions selects backend, queue depth and worker count.
	IOOptions = iomgr.Options
	// IOStats are a file's submission/completion counters.
	IOStats = iomgr.Stats
	// BlockStore is the device interface the pager stack pages against.
	BlockStore = pager.BlockStore
	// FileVolume is a BlockStore over a real file through the I/O
	// manager.
	FileVolume = pager.FileVolume
	// FramePool is a frame-table buffer cache over a BlockStore.
	FramePool = pager.FramePool
	// IOCounters aggregate real device and frame-pool traffic.
	IOCounters = pager.IOCounters
)

// IOOpen opens (or creates, with Options.Create) a file for
// asynchronous I/O.
var IOOpen = iomgr.Open

// OpenFileVolume opens a block volume backed by a real file.
var OpenFileVolume = pager.OpenFileVolume

// NewFramePool builds a buffer pool of nframes slab-backed frames.
var NewFramePool = pager.NewFramePool

// NewDefaultPagerStore builds a default pager over any BlockStore.
var NewDefaultPagerStore = pager.NewDefaultPagerStore

// --- observability -----------------------------------------------------------

// The kernel-wide observability surface: every subsystem records into
// one process-global metrics registry (counters, gauges, log₂ latency
// histograms — all lock-free, allocation-free on the hot path), and a
// sampled cross-host tracing facility stamps messages with trace IDs
// that survive RPC replies, batches and netmsg forwarding, so one
// logical operation yields one timeline across kernels.
type (
	// MetricsSnapshot is a point-in-time copy of every registered
	// metric; Diff two snapshots to get interval rates.
	MetricsSnapshot = obs.Snapshot
	// HistSnapshot is one histogram's buckets with quantile accessors
	// (P50 / P99 / P999 / Mean).
	HistSnapshot = obs.HistSnapshot
	// TraceEvent is one recorded hop of a traced message.
	TraceEvent = obs.Event
	// TraceHop discriminates hop kinds (send, enqueue, proxy-forward,
	// receive, reply).
	TraceHop = obs.Hop
)

// Metrics snapshots the process-global metrics registry: per-host IPC
// and RPC counters and latency histograms, netmsg proxy and per-peer
// traffic counters, pager fault/eviction counters, I/O manager and WAL
// activity. Render with MetricsSnapshot.Table, or Diff two snapshots
// for an interval view.
func Metrics() MetricsSnapshot { return obs.Default().Snapshot() }

// SetTraceSampling sets the trace sampling rate: every n-th Send mints
// a trace ID (0 disables, 1 traces everything). Returns the previous
// rate. Unsampled messages pay one atomic load and a branch.
var SetTraceSampling = obs.SetTraceSampling

// Trace returns the recorded hops of one trace ID across every host's
// flight recorder, in timestamp order.
var Trace = obs.Trace

// TraceDump returns every hop event still held by the flight
// recorders, in timestamp order.
var TraceDump = obs.TraceEvents

// FormatTrace renders a hop timeline human-readably, offsets relative
// to the first hop.
var FormatTrace = obs.FormatTrace

// ResetTrace clears every flight recorder (test isolation).
var ResetTrace = obs.ResetTrace

// --- application suite ------------------------------------------------------------

// Minimal filesystem (§4.1).
type FSServer = fs.Server

// NewFSServer creates the read-whole-file/write-whole-file server.
func NewFSServer(k *Kernel, disk *Disk) (*FSServer, error) { return fs.NewServer(k, disk) }

// FSReadFile / FSWriteFile / FSStat are the client calls of §4.1;
// FSOpen opens a per-client handle whose send right is the session —
// the server reaps it on no-senders when the client closes or dies.
var (
	FSReadFile   = fs.ReadFile
	FSWriteFile  = fs.WriteFile
	FSStat       = fs.Stat
	FSList       = fs.List
	FSMappedSize = fs.MappedSize
	FSOpen       = fs.Open
)

// FSHandle is a client-held open file (see FSOpen).
type FSHandle = fs.Handle

// Consistent network shared memory (§4.2).
type SharedMemoryServer = netmem.Server

// NewSharedMemoryServer creates the shared memory data manager.
func NewSharedMemoryServer(k *Kernel) (*SharedMemoryServer, error) { return netmem.NewServer(k) }

// SharedCreate / SharedAttach are the client calls. SharedAttachObject
// returns the attachment right without mapping; deallocating the last
// attachment right anywhere reaps the region (detach-on-death).
var (
	SharedCreate       = netmem.Create
	SharedAttach       = netmem.Attach
	SharedAttachObject = netmem.AttachObject
)

// Copy-on-reference task migration (§8.2).
type (
	MigrationOptions = migrate.Options
	Migration        = migrate.Migration
)

// Migrate moves a task's address space to another kernel
// copy-on-reference.
var Migrate = migrate.Migrate

// Camelot-style recoverable virtual memory (§8.3).
type (
	CamelotDiskManager = camelot.DiskManager
	CamelotClient      = camelot.Client
	CamelotSegment     = camelot.Segment
	CamelotTx          = camelot.Tx
)

// NewCamelotDiskManager creates the write-ahead-logging disk manager
// over simulated disks (instant durability, deterministic clock).
func NewCamelotDiskManager(k *Kernel, dataDisk, logDisk *Disk) (*CamelotDiskManager, error) {
	return camelot.NewDiskManager(k, dataDisk, logDisk)
}

// CamelotDurableOptions sizes a real-file disk manager.
type CamelotDurableOptions = camelot.DurableOptions

// CamelotWALStats counts log-device appends, forces and (group-
// committed) fsyncs.
type CamelotWALStats = camelot.WALStats

// NewDurableCamelotDiskManager creates a disk manager whose segments,
// write-ahead log and catalog live in real files under dir; reopening
// the directory after a crash recovers exactly the committed state.
func NewDurableCamelotDiskManager(k *Kernel, dir string, o CamelotDurableOptions) (*CamelotDiskManager, error) {
	return camelot.NewDurableDiskManager(k, dir, o)
}

// CamelotOpen connects a task to a disk manager service port.
var CamelotOpen = camelot.Open

// UNIX emulation I/O paths (§8.1).
type (
	UnixFileSystem = unixemu.FileSystem
	UnixFile       = unixemu.File
	BufferCacheFS  = unixemu.BufferCacheFS
	MappedFS       = unixemu.MappedFS
)

// NewBufferCacheFS builds the traditional buffer-cache baseline.
var NewBufferCacheFS = unixemu.NewBufferCacheFS

// NewMappedFS builds the Mach mapped-file path over an FS service port.
var NewMappedFS = unixemu.NewMappedFS
