package mach_test

import (
	"bytes"
	"testing"
	"time"

	"repro/mach"
)

// TestPublicAPIQuickstart exercises the README quickstart flow end to
// end through the public package only.
func TestPublicAPIQuickstart(t *testing.T) {
	k := mach.NewKernel(mach.Config{Frames: 512, PageSize: 4096})
	defer k.Shutdown()
	task := k.NewTask()
	addr, err := task.VMAllocate(0, 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := task.VMWrite(addr, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	child, err := task.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if err := child.VMWrite(addr, []byte("HELLO")); err != nil {
		t.Fatal(err)
	}
	pb, _ := task.VMRead(addr, 5)
	if string(pb) != "hello" {
		t.Fatalf("parent sees %q", pb)
	}
	st := k.Statistics()
	if st.Faults == 0 || st.CowFaults == 0 {
		t.Fatalf("stats %+v", st)
	}
}

// pubPager is a data manager defined entirely against the public API.
type pubPager struct{ mach.NopHandler }

func (pubPager) DataRequest(mo *mach.MemoryObject, offset, length uint64, desired mach.Prot) {
	page := bytes.Repeat([]byte{0x5A}, int(length))
	_ = mo.DataProvided(offset, page, mach.ProtNone)
}

func TestPublicAPIDataManager(t *testing.T) {
	k := mach.NewKernel(mach.Config{Frames: 256, PageSize: 4096})
	defer k.Shutdown()
	task := k.NewTask()
	mgrTask := k.NewTask()
	mgr := mach.NewManager(mgrTask.Space, pubPager{})
	mo, err := mgr.NewObject(nil)
	if err != nil {
		t.Fatal(err)
	}
	go mgr.Run()
	defer mgr.Stop()
	p, err := mgrTask.Space.Resolve(mo.Port)
	if err != nil {
		t.Fatal(err)
	}
	name, err := task.Space.InsertRight(p, mach.SendRight)
	if err != nil {
		t.Fatal(err)
	}
	maddr, err := task.VMAllocateWithPager(name, 0, 0, 8*4096, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := task.VMRead(maddr+4096, 2)
	if err != nil || b[0] != 0x5A || b[1] != 0x5A {
		t.Fatalf("pager data %v %v", b, err)
	}
}

func TestPublicAPIComplex(t *testing.T) {
	kernels, topo, clock := mach.Complex(3, mach.NUMA, 128, 4096)
	defer func() {
		for _, k := range kernels {
			k.Shutdown()
		}
	}()
	if len(kernels) != 3 {
		t.Fatalf("kernels %d", len(kernels))
	}
	for i, k := range kernels {
		if k.Host() != mach.HostID(i) {
			t.Fatalf("host %d = %d", i, k.Host())
		}
		if k.Clock() != clock || k.Topology() != topo {
			t.Fatal("kernels do not share clock/topology")
		}
	}
	// Cross-host message charges the shared clock.
	a := kernels[0].NewTask()
	b := kernels[2].NewTask()
	svc, _ := b.Space.AllocatePort()
	p, _ := b.Space.Resolve(svc)
	name, _ := a.Space.InsertRight(p, mach.SendRight)
	before := clock.Now()
	if err := a.Send(&mach.Message{ID: 1, RemotePort: name}, mach.SendOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Receive(svc, mach.ReceiveOptions{Timeout: time.Second}); err != nil {
		t.Fatal(err)
	}
	if clock.Now() == before {
		t.Fatal("cross-host message charged nothing")
	}
	if topo.Stats().RemoteMessages != 1 {
		t.Fatalf("net stats %+v", topo.Stats())
	}
}

func TestPublicAPIFilesystemSuite(t *testing.T) {
	k := mach.NewKernel(mach.Config{Frames: 512, PageSize: 4096})
	defer k.Shutdown()
	disk := mach.NewDisk(512, 4096, mach.DefaultDiskLatency, k.Clock())
	srv, err := mach.NewFSServer(k, disk)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	defer srv.Stop()
	if err := srv.CreateFile("f", []byte("public api")); err != nil {
		t.Fatal(err)
	}
	task := k.NewTask()
	svc, _ := srv.Publish(task)
	addr, size, err := mach.FSReadFile(task, svc, "f")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := task.VMRead(addr, size)
	if string(got) != "public api" {
		t.Fatalf("read %q", got)
	}
	n, err := mach.FSStat(task, svc, "f")
	if err != nil || n != 10 {
		t.Fatalf("stat %d %v", n, err)
	}
	_ = task.VMDeallocate(addr, mach.FSMappedSize(task, size))
}

func TestPublicAPISharedMemoryAndCamelot(t *testing.T) {
	kernels, _, _ := mach.Complex(2, mach.NORMA, 512, 4096)
	defer func() {
		for _, k := range kernels {
			k.Shutdown()
		}
	}()
	srv, err := mach.NewSharedMemoryServer(kernels[0])
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	defer srv.Stop()
	t0 := kernels[0].NewTask()
	t1 := kernels[1].NewTask()
	svc0, _ := srv.Publish(t0)
	svc1, _ := srv.Publish(t1)
	if err := mach.SharedCreate(t0, svc0, "r", 4096); err != nil {
		t.Fatal(err)
	}
	a0, _, err := mach.SharedAttach(t0, svc0, "r")
	if err != nil {
		t.Fatal(err)
	}
	a1, _, err := mach.SharedAttach(t1, svc1, "r")
	if err != nil {
		t.Fatal(err)
	}
	t0.VMWrite(a0, []byte{7})
	b, err := t1.VMRead(a1, 1)
	if err != nil || b[0] != 7 {
		t.Fatalf("shared read %v %v", b, err)
	}

	// Camelot over the public API.
	dataDisk := mach.NewDisk(256, 4096, 0, nil)
	logDisk := mach.NewDisk(1024, 4096, 0, nil)
	dm, err := mach.NewCamelotDiskManager(kernels[0], dataDisk, logDisk)
	if err != nil {
		t.Fatal(err)
	}
	go dm.Run()
	defer dm.Stop()
	app := kernels[0].NewTask()
	csvc, _ := dm.Publish(app)
	client := mach.CamelotOpen(app, csvc)
	if err := client.CreateSegment("s", 4096); err != nil {
		t.Fatal(err)
	}
	seg, err := client.Attach("s")
	if err != nil {
		t.Fatal(err)
	}
	tx := client.Begin()
	if err := tx.Write(seg, 0, []byte("tx")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ := seg.Read(0, 2)
	if string(got) != "tx" {
		t.Fatalf("segment %q", got)
	}
}

func TestPublicAPIMigrationAndUnixEmu(t *testing.T) {
	kernels, _, _ := mach.Complex(2, mach.NORMA, 512, 4096)
	defer func() {
		for _, k := range kernels {
			k.Shutdown()
		}
	}()
	src := kernels[0].NewTask()
	addr, _ := src.VMAllocate(0, 8*4096, true)
	src.VMWrite(addr, []byte("migrate me"))
	migrated, mig, err := mach.Migrate(src, kernels[1], mach.MigrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mig.Stop()
	got, err := migrated.VMRead(addr, 10)
	if err != nil || string(got) != "migrate me" {
		t.Fatalf("migrated read %q %v", got, err)
	}

	// UNIX emulation baseline through the public API.
	disk := mach.NewDisk(256, 4096, 0, nil)
	bc := mach.NewBufferCacheFS(disk, nil, mach.ModelFor(mach.UMA), 8)
	if err := bc.Create("u", []byte("unix file")); err != nil {
		t.Fatal(err)
	}
	f, err := bc.Open("u")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "unix file" {
		t.Fatalf("bc read %q %v", buf, err)
	}
}

func TestPublicAPIFaultPolicy(t *testing.T) {
	k := mach.NewKernel(mach.Config{
		Frames: 128, PageSize: 4096,
		Fault: mach.FaultPolicy{Timeout: 30 * time.Millisecond},
	})
	defer k.Shutdown()
	task := k.NewTask()
	mgrTask := k.NewTask()
	// A manager that never answers.
	mgr := mach.NewManager(mgrTask.Space, mach.NopHandler{})
	mo, _ := mgr.NewObject(nil)
	go mgr.Run()
	defer mgr.Stop()
	p, _ := mgrTask.Space.Resolve(mo.Port)
	name, _ := task.Space.InsertRight(p, mach.SendRight)
	addr, err := task.VMAllocateWithPager(name, 0, 0, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := task.VMRead(addr, 1); err != mach.ErrMemoryFailure {
		t.Fatalf("silent manager: %v", err)
	}
}

func TestProtAndInheritValues(t *testing.T) {
	if !mach.ProtAll.Allows(mach.ProtRead | mach.ProtWrite) {
		t.Fatal("ProtAll should allow rw")
	}
	if mach.ProtRead.Allows(mach.ProtWrite) {
		t.Fatal("ProtRead should not allow write")
	}
	if mach.InheritCopy.String() != "copy" || mach.InheritShare.String() != "share" {
		t.Fatal("inherit names wrong")
	}
	if mach.ProtDefault.String() != "rw-" {
		t.Fatalf("ProtDefault renders %q", mach.ProtDefault.String())
	}
}

// TestPortSetFacade drives port sets and dead-name notifications
// through the public facade: one task receives from two service ports
// via a set, and a client learns of a service's death through
// OnDeadName.
func TestPortSetFacade(t *testing.T) {
	k := mach.NewKernel(mach.Config{})
	defer k.Shutdown()
	server := k.NewTask()
	client := k.NewTask()

	set, err := server.Space.AllocatePortSet()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := server.Space.AllocatePort()
	b, _ := server.Space.AllocatePort()
	if err := server.Space.MoveToPortSet(set, a); err != nil {
		t.Fatal(err)
	}
	if err := server.Space.MoveToPortSet(set, b); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Receive(a, mach.ReceiveOptions{NonBlocking: true}); err != mach.ErrInSet {
		t.Fatalf("direct receive on member: %v, want ErrInSet", err)
	}
	ca, _ := server.Space.CopySendRight(client.Space, a)
	cb, _ := server.Space.CopySendRight(client.Space, b)
	for i, n := range []mach.Name{ca, cb} {
		if err := client.Send(&mach.Message{ID: mach.MsgID(i + 1), RemotePort: n}, mach.SendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	got := map[mach.Name]bool{}
	for i := 0; i < 2; i++ {
		m, err := server.Receive(set, mach.ReceiveOptions{Timeout: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		got[m.LocalPort] = true
	}
	if !got[a] || !got[b] {
		t.Fatalf("set receive served %v, want both members", got)
	}

	// Dead-name notification through the watcher facade.
	w := mach.NewLifecycleWatcher(client.Space)
	go w.Run()
	defer w.Stop()
	fired := make(chan mach.Name, 1)
	if err := w.OnDeadName(ca, func(n mach.Name) { fired <- n }); err != nil {
		t.Fatal(err)
	}
	if err := server.Space.DeallocatePort(a); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-fired:
		if n != ca {
			t.Fatalf("dead name %d, want %d", n, ca)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dead-name callback never ran")
	}
	if _, err := client.Space.Resolve(ca); err != mach.ErrDeadName {
		t.Fatalf("resolve dead name: %v", err)
	}
}
