// Quickstart: the five Mach abstractions in one program — tasks, threads,
// ports, messages, and a memory object served by a user-level data
// manager.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/mach"
)

// greeterPager is a tiny data manager: a memory object whose every page
// materializes filled with a pattern — "the Mach kernel makes no
// assumptions about the purpose of the memory object".
type greeterPager struct {
	mach.NopHandler
}

func (greeterPager) DataRequest(mo *mach.MemoryObject, offset, length uint64, desired mach.Prot) {
	page := make([]byte, length)
	copy(page, []byte(fmt.Sprintf("[page at offset %d, conjured by a user-level pager] ", offset)))
	_ = mo.DataProvided(offset, page, mach.ProtNone)
}

func main() {
	// Boot a kernel: one simulated host with 4 MiB of memory.
	k := mach.NewKernel(mach.Config{Frames: 1024, PageSize: 4096})
	defer k.Shutdown()

	// --- tasks and virtual memory (vm_allocate, copy-on-write fork) ---
	task := k.NewTask()
	addr, err := task.VMAllocate(0, 64*1024, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := task.VMWrite(addr, []byte("hello from the parent")); err != nil {
		log.Fatal(err)
	}
	child, err := task.Fork()
	if err != nil {
		log.Fatal(err)
	}
	// The child sees the parent's data copy-on-write; its writes are
	// private.
	if err := child.VMWrite(addr+11, []byte("the CHILD ")); err != nil {
		log.Fatal(err)
	}
	pb, _ := task.VMRead(addr, 21)
	cb, _ := child.VMRead(addr, 21)
	fmt.Printf("parent sees: %q\n", pb)
	fmt.Printf("child sees : %q\n", cb)

	// --- threads ---
	done := make(chan string, 1)
	th, err := task.SpawnThread(func(self *mach.Thread) {
		b, _ := self.Task.VMRead(addr, 5)
		done <- string(b)
	})
	if err != nil {
		log.Fatal(err)
	}
	th.Join()
	fmt.Printf("thread read: %q\n", <-done)

	// --- ports and messages (msg_rpc) ---
	server := k.NewTask()
	svc, _ := server.Space.AllocatePort()
	go func() {
		for {
			m, err := server.Receive(svc, mach.ReceiveOptions{})
			if err != nil {
				return
			}
			reply := &mach.Message{
				ID:         m.ID + 1,
				RemotePort: m.RemotePort,
				Sections:   []mach.Section{mach.InlineBytes(append([]byte("echo: "), m.InlineData()...))},
			}
			_ = server.Send(reply, mach.SendOptions{})
		}
	}()
	name, _ := server.Space.CopySendRight(task.Space, svc)
	resp, err := task.RPC(&mach.Message{
		ID: 100, RemotePort: name,
		Sections: []mach.Section{mach.InlineBytes([]byte("ping over a port"))},
	}, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rpc reply  : %q\n", resp.InlineData())

	// --- a user-level memory object (vm_allocate_with_pager) ---
	mgrTask := k.NewTask()
	mgr := mach.NewManager(mgrTask.Space, greeterPager{})
	mo, err := mgr.NewObject(nil)
	if err != nil {
		log.Fatal(err)
	}
	go mgr.Run()
	defer mgr.Stop()
	moName, _ := mgrTask.Space.CopySendRight(task.Space, mo.Port)
	maddr, err := task.VMAllocateWithPager(moName, 0, 0, 16*4096, true)
	if err != nil {
		log.Fatal(err)
	}
	b, err := task.VMRead(maddr+2*4096, 40) // fault: pager_data_request -> provided
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pager page : %q\n", b)

	st := k.Statistics()
	fmt.Printf("\nvm_statistics: faults=%d zero-fills=%d cow-faults=%d pageins=%d\n",
		st.Faults, st.ZeroFills, st.CowFaults, st.Pageins)
}
