// Camelot: §8.3's recoverable virtual memory — a bank-ledger segment
// mapped into the application's address space, failure-atomic transfers
// through write-ahead logging, a crash mid-flight, and recovery that
// keeps committed transfers and rolls back the in-doubt one.
//
// Run with: go run ./examples/camelot
package main

import (
	"fmt"
	"log"

	"repro/mach"
)

const pageSize = 4096

// account i's balance lives at offset i*8 as a uint64.
func balance(seg *mach.CamelotSegment, i int) uint64 {
	b, err := seg.Read(uint64(i*8), 8)
	if err != nil {
		log.Fatal(err)
	}
	return mach.U64(b)
}

func setBalance(tx *mach.CamelotTx, seg *mach.CamelotSegment, i int, v uint64) {
	var b [8]byte
	mach.PutU64(b[:], v)
	if err := tx.Write(seg, uint64(i*8), b[:]); err != nil {
		log.Fatal(err)
	}
}

// transfer moves amount from account a to account b, atomically.
func transfer(c *mach.CamelotClient, seg *mach.CamelotSegment, a, b int, amount uint64) *mach.CamelotTx {
	tx := c.Begin()
	setBalance(tx, seg, a, balance(seg, a)-amount)
	setBalance(tx, seg, b, balance(seg, b)+amount)
	return tx
}

func main() {
	k := mach.NewKernel(mach.Config{Frames: 512, PageSize: pageSize})
	defer k.Shutdown()
	dataDisk := mach.NewDisk(1024, pageSize, mach.DefaultDiskLatency, k.Clock())
	logDisk := mach.NewDisk(8192, pageSize, mach.DefaultDiskLatency, k.Clock())
	dm, err := mach.NewCamelotDiskManager(k, dataDisk, logDisk)
	if err != nil {
		log.Fatal(err)
	}
	go dm.Run()
	defer dm.Stop()

	app := k.NewTask()
	svc, err := dm.Publish(app)
	if err != nil {
		log.Fatal(err)
	}
	client := mach.CamelotOpen(app, svc)
	if err := client.CreateSegment("ledger", 4*pageSize); err != nil {
		log.Fatal(err)
	}
	seg, err := client.Attach("ledger")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ledger segment mapped into the application's address space")

	// Fund two accounts (committed).
	tx := client.Begin()
	setBalance(tx, seg, 0, 1000)
	setBalance(tx, seg, 1, 1000)
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// A committed transfer.
	if err := transfer(client, seg, 0, 1, 250).Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after committed transfer: acct0=%d acct1=%d\n",
		balance(seg, 0), balance(seg, 1))

	// A transfer that is IN FLIGHT when the system crashes: updates
	// applied to memory and logged, but no commit record forced.
	_ = transfer(client, seg, 0, 1, 500)
	fmt.Printf("in-flight transfer applied in memory: acct0=%d acct1=%d\n",
		balance(seg, 0), balance(seg, 1))

	fmt.Println("*** CRASH *** (volatile state lost; disks survive)")
	dm.Crash()
	replayed := dm.Recover()
	fmt.Printf("recovery replayed %d log updates\n", replayed)

	data, err := dm.SegmentBytes("ledger")
	if err != nil {
		log.Fatal(err)
	}
	a0 := mach.U64(data[0:])
	a1 := mach.U64(data[8:])
	fmt.Printf("after recovery: acct0=%d acct1=%d (committed kept, in-flight rolled back)\n", a0, a1)
	if a0 != 750 || a1 != 1250 {
		log.Fatalf("recovery violated atomicity: %d/%d", a0, a1)
	}

	st := dm.Stats()
	fmt.Printf("\ndisk manager: log-records=%d log-forces=%d wal-forces=%d commits=%d\n",
		st.LogRecords, st.LogForces, st.WALForces, st.Commits)
	fmt.Println("the kernel needed no modification: WAL rides entirely on the external pager")
}
