// Unixproc: the §8.1 UNIX emulation made concrete — processes with file
// descriptors over the mapped-file I/O path, and a fork whose shared file
// offsets travel through INHERITED SHARED MEMORY ("Shared process state
// information can be passed on to child processes using inherited shared
// memory").
//
// Run with: go run ./examples/unixproc
package main

import (
	"fmt"
	"log"

	"repro/internal/unixemu"
	"repro/mach"
)

func main() {
	k := mach.NewKernel(mach.Config{Frames: 1024, PageSize: 4096})
	defer k.Shutdown()
	disk := mach.NewDisk(2048, 4096, mach.DefaultDiskLatency, k.Clock())
	srv, err := mach.NewFSServer(k, disk)
	if err != nil {
		log.Fatal(err)
	}
	go srv.Run()
	defer srv.Stop()
	if err := srv.CreateFile("motd", []byte("line one\nline two\nline three\n")); err != nil {
		log.Fatal(err)
	}

	task := k.NewTask()
	svc, err := srv.Publish(task)
	if err != nil {
		log.Fatal(err)
	}
	proc, err := unixemu.NewProcess(task, unixemu.NewMappedFS(task, svc))
	if err != nil {
		log.Fatal(err)
	}

	fd, err := proc.Open("motd")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 9)
	proc.Read(fd, buf)
	fmt.Printf("parent read : %q\n", buf)

	// Fork: the child's descriptor works, and because the offsets live
	// in an InheritShare page, the child's reads advance the PARENT's
	// file position — POSIX semantics carried by Mach memory
	// inheritance.
	child, err := proc.Fork()
	if err != nil {
		log.Fatal(err)
	}
	child.Read(fd, buf)
	fmt.Printf("child read  : %q\n", buf)
	next := make([]byte, 11)
	proc.Read(fd, next)
	fmt.Printf("parent next : %q  (continued after the child!)\n", next)

	// dup shares the offset too.
	fd2, _ := proc.Dup(fd)
	off, _ := proc.Lseek(fd2, 0, unixemu.SeekCur)
	fmt.Printf("dup'd fd is at offset %d\n", off)

	// The child edits the file through its copy-on-write mapping and
	// stores it back via the server.
	wfd, err := child.Open("motd")
	if err != nil {
		log.Fatal(err)
	}
	child.Write(wfd, []byte("LINE ONE!"))
	if err := child.Close(wfd); err != nil {
		log.Fatal(err)
	}
	rfd, _ := proc.Open("motd")
	full := make([]byte, 29)
	proc.Read(rfd, full)
	fmt.Printf("after child edit: %q\n", full[:9])

	fmt.Println("\nfile offsets lived in an InheritShare page; file bytes in mapped memory objects")
}
