// Sharedmem: the §4.2 consistent network shared memory walkthrough — two
// clients on different hosts map the same region, both read a page
// (read-sharing under a write lock), then one writes, which triggers
// pager_data_unlock, invalidation of the other host's copy, and a write
// grant — the paper's three frames, narrated with the server's counters.
//
// Run with: go run ./examples/sharedmem
package main

import (
	"fmt"
	"log"

	"repro/mach"
)

func main() {
	// Two kernels on a NORMA (message-only) interconnect, shared
	// memory server on host 0.
	kernels, topo, clock := mach.Complex(2, mach.NORMA, 512, 4096)
	defer func() {
		for _, k := range kernels {
			k.Shutdown()
		}
	}()
	srv, err := mach.NewSharedMemoryServer(kernels[0])
	if err != nil {
		log.Fatal(err)
	}
	go srv.Run()
	defer srv.Stop()

	clientA := kernels[0].NewTask()
	clientB := kernels[1].NewTask()
	svcA, _ := srv.Publish(clientA)
	svcB, _ := srv.Publish(clientB)

	// Frame 1: both clients map the region (pager_init per kernel).
	if err := mach.SharedCreate(clientA, svcA, "region-X", 4*4096); err != nil {
		log.Fatal(err)
	}
	addrA, _, err := mach.SharedAttach(clientA, svcA, "region-X")
	if err != nil {
		log.Fatal(err)
	}
	addrB, _, err := mach.SharedAttach(clientB, svcB, "region-X")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame 1: both hosts mapped region-X (A@%#x on host 0, B@%#x on host 1)\n", addrA, addrB)

	// Frame 2: both clients take a read fault on the same page; each
	// kernel receives the data with a write lock applied.
	if _, err := clientA.VMRead(addrA, 8); err != nil {
		log.Fatal(err)
	}
	if _, err := clientB.VMRead(addrB, 8); err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("frame 2: concurrent readers — read-serves=%d invalidations=%d\n",
		st.ReadServes, st.Invalidations)

	// Frame 3: client A writes the page both have been reading. Its
	// kernel already holds the (read-locked) data, so it issues
	// pager_data_unlock; the server invalidates B's use with
	// pager_flush_request and grants A write access with
	// pager_data_lock.
	if err := clientA.VMWrite(addrA, []byte("A owns this page now")); err != nil {
		log.Fatal(err)
	}
	st = srv.Stats()
	fmt.Printf("frame 3: A wrote — write-grants=%d invalidations=%d\n",
		st.WriteGrants, st.Invalidations)

	// B reads again: A (the writer) is flushed back to reader status
	// and B sees the new data.
	got, err := clientB.VMRead(addrB, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host 1 reads: %q\n", got)
	st = srv.Stats()
	fmt.Printf("final counters: read-serves=%d write-grants=%d invalidations=%d write-backs=%d\n",
		st.ReadServes, st.WriteGrants, st.Invalidations, st.WriteBacks)
	fmt.Printf("network: %+v\n", topo.Stats())
	fmt.Printf("simulated time elapsed: %v\n", clock.Now())
}
