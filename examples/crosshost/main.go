// Crosshost: location-transparent IPC through the netmsg layer — the
// paper's duality closed across the network. Two NORMA hosts share one
// interconnect; a filesystem server and a shared-memory server run on
// host 0; an UNMODIFIED client on host 1 finds them by name and uses
// them exactly as a local client would. Every request, reply, page-in
// and invalidation crosses the wire through proxy ports, charged to the
// simulated interconnect.
//
// Run with: go run ./examples/crosshost
package main

import (
	"fmt"
	"log"

	"repro/mach"
)

func main() {
	kernels, topo, _ := mach.Complex(2, mach.NORMA, 1024, 4096)
	k0, k1 := kernels[0], kernels[1]
	defer k0.Shutdown()
	defer k1.Shutdown()

	// --- host 0: boot the services and check them in by name ---

	disk := mach.NewDisk(2048, 4096, mach.DefaultDiskLatency, k0.Clock())
	fsrv, err := mach.NewFSServer(k0, disk)
	if err != nil {
		log.Fatal(err)
	}
	go fsrv.Run()
	defer fsrv.Stop()

	msrv, err := mach.NewSharedMemoryServer(k0)
	if err != nil {
		log.Fatal(err)
	}
	go msrv.Run()
	defer msrv.Stop()

	registrar := k0.NewTask()
	fsRight, err := fsrv.Publish(registrar)
	if err != nil {
		log.Fatal(err)
	}
	if err := mach.NetMsgCheckIn(registrar, "fs", fsRight); err != nil {
		log.Fatal(err)
	}
	memRight, err := msrv.Publish(registrar)
	if err != nil {
		log.Fatal(err)
	}
	if err := mach.NetMsgCheckIn(registrar, "netmem", memRight); err != nil {
		log.Fatal(err)
	}
	if err := fsrv.CreateFile("motd", []byte("ports make the machine boundary invisible\n")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("host 0: fs and netmem servers checked in with the name service")

	// --- host 1: find the services by name and use them unmodified ---

	app := k1.NewTask()
	fsSvc, err := mach.NetMsgLookUp(app, "fs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("host 1: looked up \"fs\" — got a local proxy port for the remote server")

	addr, size, err := mach.FSReadFile(app, fsSvc, "motd")
	if err != nil {
		log.Fatal(err)
	}
	data, _ := app.VMRead(addr, size)
	fmt.Printf("host 1: fs_read_file(\"motd\") over the wire: %q\n", data)

	report := []byte("written from host 1 through a proxy port\n")
	waddr, _ := app.VMAllocate(0, uint64(len(report)), true)
	_ = app.VMWrite(waddr, report)
	if err := mach.FSWriteFile(app, fsSvc, "report", waddr, uint64(len(report))); err != nil {
		log.Fatal(err)
	}
	names, _ := mach.FSList(app, fsSvc)
	fmt.Printf("host 1: fs_write_file + list → %v (OOL regions crossed the interconnect)\n", names)

	// --- shared memory across hosts: the memory half of the duality ---

	memSvc, err := mach.NetMsgLookUp(app, "netmem")
	if err != nil {
		log.Fatal(err)
	}
	if err := mach.SharedCreate(app, memSvc, "blackboard", 4096); err != nil {
		log.Fatal(err)
	}
	rAddr, _, err := mach.SharedAttach(app, memSvc, "blackboard")
	if err != nil {
		log.Fatal(err)
	}
	local := k0.NewTask()
	memSvc0, err := mach.NetMsgLookUp(local, "netmem")
	if err != nil {
		log.Fatal(err)
	}
	lAddr, _, err := mach.SharedAttach(local, memSvc0, "blackboard")
	if err != nil {
		log.Fatal(err)
	}
	if err := app.VMWrite(rAddr, []byte{99}); err != nil {
		log.Fatal(err)
	}
	b, err := local.VMRead(lAddr, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host 1 wrote 99 into shared memory; host 0 reads %d — every pager call was proxied\n", b[0])

	st := topo.Stats()
	fmt.Printf("\ninterconnect: %d local messages, %d remote messages, %d remote bytes\n",
		st.LocalMessages, st.RemoteMessages, st.RemoteBytes)
}
