// Agora: the §8.4 distributed speech-understanding blackboard — signal
// agents on loosely coupled workstations post raw observations by MESSAGE
// PASSING; hypothesis agents on the multiprocessor host combine them
// through SHARED MEMORY; a display agent reads the final board. "All
// accesses to the blackboard are through a procedural interface that
// determines if shared memory or communication must be used."
//
// Run with: go run ./examples/agora
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/internal/agora"
	"repro/internal/netmem"
	"repro/mach"
)

func main() {
	// Host 0 is the multiprocessor (the blackboard lives there); hosts
	// 1 and 2 are workstations on the network.
	kernels, topo, clock := mach.Complex(3, mach.NUMA, 512, 4096)
	defer func() {
		for _, k := range kernels {
			k.Shutdown()
		}
	}()
	srv, err := netmem.NewServer(kernels[0])
	if err != nil {
		log.Fatal(err)
	}
	go srv.Run()
	defer srv.Stop()
	board, err := agora.NewBoard(kernels[0], srv, 64)
	if err != nil {
		log.Fatal(err)
	}
	defer board.Stop()

	var wg sync.WaitGroup

	// Two signal agents on the workstations: message passing.
	for w := 1; w <= 2; w++ {
		task := kernels[w].NewTask()
		broker, err := board.PublishBroker(task)
		if err != nil {
			log.Fatal(err)
		}
		remote := agora.JoinRemote(task, broker)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for burst := 0; burst < 3; burst++ {
				h := agora.Hypothesis{
					Score: uint64(40 + 10*burst),
					Text:  fmt.Sprintf("ws%d: energy burst #%d", w, burst),
				}
				if err := remote.Post(h); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}

	// Two hypothesis agents on the multiprocessor: shared memory. They
	// watch the generation counter and combine observations into word
	// hypotheses.
	for a := 0; a < 2; a++ {
		task := kernels[0].NewTask()
		svc, err := board.PublishSharedMemory(task)
		if err != nil {
			log.Fatal(err)
		}
		agent, err := agora.Join(task, svc, 64, a+1)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(a int, agent *agora.Agent) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				hyps, err := agent.Snapshot()
				if err != nil {
					log.Fatal(err)
				}
				h := agora.Hypothesis{
					Score: uint64(60 + len(hyps)),
					Text:  fmt.Sprintf("mp-agent%d: word hypothesis from %d observations", a, len(hyps)),
				}
				if err := agent.Post(h); err != nil && err != agora.ErrFull {
					log.Fatal(err)
				}
			}
		}(a, agent)
	}

	wg.Wait()

	// The display agent (workstation 1, message passing) renders the
	// final blackboard.
	displayTask := kernels[1].NewTask()
	broker, _ := board.PublishBroker(displayTask)
	display := agora.JoinRemote(displayTask, broker)
	hyps, err := display.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(hyps, func(i, j int) bool { return hyps[i].Score > hyps[j].Score })
	fmt.Printf("blackboard (%d hypotheses, best first):\n", len(hyps))
	for _, h := range hyps {
		fmt.Printf("  [%3d] %s\n", h.Score, h.Text)
	}
	fmt.Printf("\nnetwork traffic: %+v\n", topo.Stats())
	fmt.Printf("simulated time: %v\n", clock.Now())
	fmt.Println("shared memory carried the blackboard; messages carried the loosely coupled agents — §8.4")
}
