// Migration: §8.2's copy-on-reference task migration — a task with a
// large, sparsely-used address space migrates to another host; only the
// pages it actually touches cross the network, and the same workload
// under pre-paging shows the trade-off.
//
// Run with: go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"time"

	"repro/mach"
)

const (
	pageSize = 4096
	npages   = 512 // 2 MiB address space
)

func buildTask(k *mach.Kernel) (*mach.Task, uint64) {
	task := k.NewTask()
	addr, err := task.VMAllocate(0, npages*pageSize, true)
	if err != nil {
		log.Fatal(err)
	}
	page := make([]byte, pageSize)
	for i := 0; i < npages; i++ {
		page[0] = byte(i)
		if err := task.VMWrite(addr+uint64(i*pageSize), page); err != nil {
			log.Fatal(err)
		}
	}
	return task, addr
}

// workload touches 5% of the address space, the sparse-use case the
// paper's demand strategy wins.
func workload(t *mach.Task, addr uint64) {
	for i := 0; i < npages/20; i++ {
		if _, err := t.VMRead(addr+uint64(i*20*pageSize), 1); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	for _, prepage := range []bool{false, true} {
		kernels, topo, clock := mach.Complex(2, mach.NORMA, 2048, pageSize)
		src, dst := kernels[0], kernels[1]
		task, addr := buildTask(src)
		topo.ResetStats()
		t0 := clock.Now()

		migrated, mig, err := mach.Migrate(task, dst, mach.MigrationOptions{PrePage: prepage})
		if err != nil {
			log.Fatal(err)
		}
		if prepage {
			for mig.Stats().PagesPrePaged < npages {
				time.Sleep(100 * time.Microsecond)
			}
		}
		workload(migrated, addr)
		elapsed := clock.Now() - t0

		st := mig.Stats()
		name := "demand (copy-on-reference)"
		if prepage {
			name = "pre-paging (push everything)"
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("  address space: %d pages (%d KiB), workload touched %d pages\n",
			npages, npages*pageSize/1024, npages/20)
		fmt.Printf("  pages moved: %d demand + %d pre-paged\n", st.PagesRequested, st.PagesPrePaged)
		fmt.Printf("  network bytes: %d KiB, simulated time: %v\n\n",
			topo.Stats().RemoteBytes/1024, elapsed.Round(time.Microsecond))

		mig.Stop()
		src.Shutdown()
		dst.Shutdown()
	}
	fmt.Println("copy-on-reference moved ~5% of the data for the same work — the §8.2 claim")
}
