// Filesystem: the paper's §4.1 scenario, translated line for line — read
// a whole file into copy-on-write memory, mutate it randomly, write back
// half, throw the working copy away — plus a demonstration that a second
// client consistently sees the original contents during the mutation.
//
// Run with: go run ./examples/filesystem
package main

import (
	"fmt"
	"log"

	"repro/mach"
)

func main() {
	k := mach.NewKernel(mach.Config{Frames: 1024, PageSize: 4096})
	defer k.Shutdown()

	disk := mach.NewDisk(2048, 4096, mach.DefaultDiskLatency, k.Clock())
	srv, err := mach.NewFSServer(k, disk)
	if err != nil {
		log.Fatal(err)
	}
	go srv.Run()
	defer srv.Stop()

	// Seed a file.
	original := make([]byte, 3*4096)
	for i := range original {
		original[i] = byte('a' + i%26)
	}
	if err := srv.CreateFile("filename", original); err != nil {
		log.Fatal(err)
	}

	app := k.NewTask()
	observer := k.NewTask()
	svcApp, _ := srv.Publish(app)
	svcObs, _ := srv.Publish(observer)

	// --- the paper's fs_read_file / mutate / fs_write_file sequence ---

	// "Read the file -- ignore errors"
	fileData, fileSize, err := mach.FSReadFile(app, svcApp, "filename")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d bytes into new copy-on-write memory at %#x\n", fileSize, fileData)

	// "Randomly change contents"
	rng := uint32(42)
	for i := 0; i < int(fileSize); i++ {
		rng = rng*1664525 + 1013904223
		off := uint64(rng) % fileSize
		b, _ := app.VMRead(fileData+off, 1)
		b[0]++
		_ = app.VMWrite(fileData+off, b)
	}
	fmt.Println("mutated the private copy in place")

	// Another application reading meanwhile consistently sees the
	// ORIGINAL file contents (the copy is private).
	obsData, obsSize, err := mach.FSReadFile(observer, svcObs, "filename")
	if err != nil {
		log.Fatal(err)
	}
	obs, _ := observer.VMRead(obsData, obsSize)
	same := true
	for i := range obs {
		if obs[i] != original[i] {
			same = false
			break
		}
	}
	fmt.Printf("observer sees original contents while mutation in progress: %v\n", same)

	// "Write back some results -- ignore errors" (half the file, as in
	// the paper).
	if err := mach.FSWriteFile(app, svcApp, "filename", fileData, fileSize/2); err != nil {
		log.Fatal(err)
	}
	newSize, _ := mach.FSStat(app, svcApp, "filename")
	fmt.Printf("stored back %d of %d bytes\n", newSize, fileSize)

	// "Throw away working copy"
	if err := app.VMDeallocate(fileData, mach.FSMappedSize(app, fileSize)); err != nil {
		log.Fatal(err)
	}
	_ = observer.VMDeallocate(obsData, mach.FSMappedSize(observer, obsSize))
	fmt.Println("working copies deallocated; server cleans up on port death")

	fmt.Printf("\ndisk ops: %+v  (page faults drove all reads, on demand)\n", disk.Stats())
}
