# Targets mirror .github/workflows/ci.yml so local runs and CI are
# identical.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-smoke fuzz crosshost

all: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ipc ./internal/kern ./internal/vm ./internal/rpc ./internal/fs ./internal/netmem ./internal/netmsg ./internal/lifecycle ./internal/camelot ./internal/agora
	$(GO) test -race -count=2 -run 'TestPortSetChurnStress|TestReceiveAnyVsSetNoDoubleDelivery' ./internal/ipc

fuzz:
	$(GO) test -run '^$$' -fuzz=FuzzDecode -fuzztime=5s ./internal/rpc
	$(GO) test -run '^$$' -fuzz=FuzzReceiveFromSet -fuzztime=5s ./internal/ipc

bench:
	$(GO) test -bench=. -benchmem -run XXX .
	$(GO) test -bench=. -benchmem -run XXX ./internal/ipc

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run XXX .
	$(GO) test -bench=. -benchtime=1x -run XXX ./internal/ipc

crosshost:
	$(GO) run ./examples/crosshost
