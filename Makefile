# Targets mirror .github/workflows/ci.yml so local runs and CI are
# identical.

GO ?= go
# Per-benchmark sampling window for the trajectory run. Long enough to
# settle the pooled fast paths, short enough that `make bench` stays
# under a couple of minutes.
BENCHTIME ?= 0.3s
# Every package that defines benchmarks. bench and bench-smoke must
# cover all of them so benchmark code can never silently rot.
BENCH_PKGS = . ./internal/ipc ./internal/rpc ./internal/iomgr ./internal/pager ./internal/camelot ./internal/obs

.PHONY: all build vet fmt fmt-check test race bench bench-trajectory bench-smoke fuzz crosshost generate generate-check

all: build vet fmt-check generate-check test

# generate re-runs machgen over the interface definitions in
# internal/idl/defs, rewriting zz_generated_machgen.go files that
# changed.
generate:
	$(GO) generate ./...

# generate-check fails if the committed generated code drifts from the
# definitions (CI runs this, so defs and output can never disagree).
generate-check: generate
	@git diff --exit-code -- '*zz_generated_machgen.go' || { \
		echo "generated code is stale: run 'make generate' and commit" >&2; exit 1; \
	}

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 -run 'TestPortSetChurnStress|TestReceiveAnyVsSetNoDoubleDelivery' ./internal/ipc

fuzz:
	$(GO) test -run '^$$' -fuzz=FuzzDecode -fuzztime=5s ./internal/rpc
	$(GO) test -run '^$$' -fuzz=FuzzBatchMatch -fuzztime=5s ./internal/rpc
	$(GO) test -run '^$$' -fuzz=FuzzReceiveFromSet -fuzztime=5s ./internal/ipc
	$(GO) test -run '^$$' -fuzz=FuzzGeneratedReplyDecode -fuzztime=5s ./internal/fs
	$(GO) test -run '^$$' -fuzz=FuzzTraceEventDecode -fuzztime=5s ./internal/obs
	$(GO) test -run '^$$' -fuzz=FuzzRegistryOps -fuzztime=5s ./internal/netmsg

# bench runs every benchmark package with -benchmem and serializes the
# combined output into the next BENCH_<n>.json trajectory point (see
# cmd/benchjson for the schema). Raw output still reaches the terminal.
bench:
	@rm -f bench.out
	for p in $(BENCH_PKGS); do \
		$(GO) test -run '^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) $$p >> bench.out || exit 1; \
	done
	$(GO) run ./cmd/benchjson emit -dir . < bench.out
	@rm -f bench.out

# bench-trajectory records a new point and gates on the previous one:
# fails on >15% ns/op regression or any allocs/op increase on the
# pinned fast-path benchmarks. This is what CI runs.
bench-trajectory: bench
	$(GO) run ./cmd/benchjson diff

bench-smoke:
	for p in $(BENCH_PKGS); do \
		$(GO) test -bench=. -benchtime=1x -run XXX $$p || exit 1; \
	done

crosshost:
	$(GO) run ./examples/crosshost
